//! Chaos recovery — randomized fault schedules under each failure policy.
//!
//! Not a paper figure: this scenario exercises the robustness layer the
//! paper leaves implicit. For a sweep of seeds we generate a randomized
//! fault schedule (crashes, rejoins, dæmon stalls, error bursts), run a
//! small job stream under each [`FailurePolicy`], and report per-policy
//! survival, requeue traffic, and heartbeat detection latency. Shape
//! checks: no job is ever silently lost, `Requeue` completes at least as
//! many jobs as `Fail`, and detection latency stays within two heartbeat
//! rounds whenever no error burst interfered.

use storm_bench::{check, parallel_sweep, write_artifact};
use storm_core::prelude::*;

const SEEDS: u64 = 12;
const HEARTBEAT_EVERY: u32 = 4;
const HORIZON: SimSpan = SimSpan::from_millis(1_000);

#[derive(Debug, Default, Clone)]
struct PolicyRow {
    completed: u64,
    failed: u64,
    stuck: u64,
    requeues: u64,
    detections: u64,
    rejoins: u64,
    latency_sum_ms: f64,
    latency_checked: u64,
}

fn run_one(seed: u64, policy: FailurePolicy) -> PolicyRow {
    let schedule = FaultSchedule::randomized(seed, 64, HORIZON);
    let cfg = ClusterConfig::paper_cluster()
        .with_seed(seed)
        .with_fault_detection(HEARTBEAT_EVERY)
        .with_failure_policy(policy)
        .with_faults(schedule.clone());
    let mut c = Cluster::new(cfg);
    let jobs: Vec<JobId> = (0..4u64)
        .map(|i| {
            c.submit_at(
                SimTime::from_millis(50 * i),
                JobSpec::new(
                    AppSpec::Synthetic {
                        compute: SimSpan::from_millis(400),
                    },
                    8 * 4,
                ),
            )
        })
        .collect();
    c.run_until(SimTime::from_secs(3));
    let w = c.world();
    let mut row = PolicyRow {
        requeues: w.stats.requeues,
        detections: w.stats.failures_detected.len() as u64,
        rejoins: w.stats.rejoins.len() as u64,
        ..PolicyRow::default()
    };
    for &j in &jobs {
        match c.job(j).state {
            JobState::Completed => row.completed += 1,
            JobState::Failed => row.failed += 1,
            _ => row.stuck += 1,
        }
    }
    // Detection latency vs the schedule's injection instants, excluding
    // events whose detection window overlapped an error burst (the burst
    // can abort the heartbeat multicast itself).
    for ev in &schedule.events {
        let start = match *ev {
            FaultEvent::Crash { at, .. } => at,
            FaultEvent::Stall { from, .. } => from,
            FaultEvent::Rejoin { .. } | FaultEvent::MmCrash { .. } => continue,
        };
        let node = ev.node();
        let Some(&(_, detected)) = w.stats.failures_detected.iter().find(|&&(n, _)| n == node)
        else {
            continue;
        };
        if schedule
            .bursts
            .iter()
            .any(|b| b.from <= detected && b.until >= start)
        {
            continue;
        }
        row.latency_sum_ms += detected.since(start).as_millis_f64();
        row.latency_checked += 1;
    }
    row
}

fn main() {
    println!(
        "Chaos recovery: {SEEDS} randomized schedules x 4 jobs, heartbeat round every {HEARTBEAT_EVERY} ms"
    );
    let policies = [
        ("Fail", FailurePolicy::Fail),
        ("Requeue", FailurePolicy::requeue()),
        ("Shrink", FailurePolicy::Shrink),
    ];
    let configs: Vec<(usize, u64)> = (0..policies.len())
        .flat_map(|p| (0..SEEDS).map(move |s| (p, s)))
        .collect();
    let rows = parallel_sweep(configs.clone(), |&(p, seed)| run_one(seed, policies[p].1));

    let mut totals = vec![PolicyRow::default(); policies.len()];
    for (&(p, _), r) in configs.iter().zip(&rows) {
        let t = &mut totals[p];
        t.completed += r.completed;
        t.failed += r.failed;
        t.stuck += r.stuck;
        t.requeues += r.requeues;
        t.detections += r.detections;
        t.rejoins += r.rejoins;
        t.latency_sum_ms += r.latency_sum_ms;
        t.latency_checked += r.latency_checked;
    }

    println!(
        "{:<10} {:>10} {:>8} {:>7} {:>9} {:>11} {:>8} {:>14}",
        "policy",
        "completed",
        "failed",
        "stuck",
        "requeues",
        "detections",
        "rejoins",
        "latency (ms)"
    );
    for ((name, _), t) in policies.iter().zip(&totals) {
        let lat = if t.latency_checked > 0 {
            format!("{:.2}", t.latency_sum_ms / t.latency_checked as f64)
        } else {
            "-".into()
        };
        println!(
            "{:<10} {:>10} {:>8} {:>7} {:>9} {:>11} {:>8} {:>14}",
            name, t.completed, t.failed, t.stuck, t.requeues, t.detections, t.rejoins, lat
        );
    }

    let total_jobs = SEEDS * 4;
    for ((name, _), t) in policies.iter().zip(&totals) {
        check(
            t.completed + t.failed == total_jobs && t.stuck == 0,
            &format!("{name}: every job reached a terminal state"),
        );
    }
    let (fail, requeue, shrink) = (&totals[0], &totals[1], &totals[2]);
    check(
        requeue.completed >= fail.completed,
        "Requeue completes at least as many jobs as Fail",
    );
    check(shrink.failed == 0, "Shrink never fails a job outright");
    check(
        requeue.requeues > 0,
        "the schedules actually displaced jobs",
    );
    check(
        requeue.detections == fail.detections,
        "detection count is policy-independent",
    );
    let bound_ms = 2.0 * f64::from(HEARTBEAT_EVERY) + 1.0;
    for ((name, _), t) in policies.iter().zip(&totals) {
        if t.latency_checked > 0 {
            check(
                t.latency_sum_ms / t.latency_checked as f64 <= bound_ms,
                &format!("{name}: mean detection latency within two rounds"),
            );
        }
    }

    // One instrumented chaos run under Requeue: the registry's fault
    // counters and detection-latency histogram become the exported health
    // record of the scenario.
    let schedule = FaultSchedule::randomized(3, 64, HORIZON);
    let cfg = ClusterConfig::paper_cluster()
        .with_seed(3)
        .with_fault_detection(HEARTBEAT_EVERY)
        .with_failure_policy(FailurePolicy::requeue())
        .with_faults(schedule)
        .with_telemetry(true);
    let mut c = Cluster::new(cfg);
    for i in 0..4u64 {
        c.submit_at(
            SimTime::from_millis(50 * i),
            JobSpec::new(
                AppSpec::Synthetic {
                    compute: SimSpan::from_millis(400),
                },
                8 * 4,
            ),
        );
    }
    c.run_until(SimTime::from_secs(3));
    let snap = c.metrics_snapshot();
    check(
        snap.counter("fault.detections").unwrap_or(0) > 0,
        "instrumented chaos run detected failures",
    );
    if let Some(h) = snap.histogram("fault.detection_latency_us") {
        println!(
            "detection latency (instrumented run): p50 <= {} µs, p99 <= {} µs, n={}",
            h.percentile(50.0),
            h.percentile(99.0),
            h.count()
        );
    }
    write_artifact("METRICS_OUT", "METRICS_chaos.json", &snap.to_json());
}
