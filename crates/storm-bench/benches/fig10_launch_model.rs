//! Figure 10 — "Measured and estimated launch times": 12 MB launches
//! measured up to 64 nodes, and the Eq. 3 model out to 16 384 nodes for
//! both the real ES40 (131 MB/s I/O-bus-limited) and an ideal-I/O-bus
//! machine.

use storm_bench::{check, parallel_sweep, pow2_range, render_comparisons, repeat, Comparison};
use storm_core::prelude::*;

const REPS: u64 = 3;

fn measured_launch_ms(nodes: u32, seed: u64) -> f64 {
    let cfg = ClusterConfig::paper_cluster()
        .with_nodes(nodes)
        .with_seed(seed);
    let mut c = Cluster::new(cfg);
    let j = c.submit(JobSpec::new(AppSpec::do_nothing_mb(12), nodes * 4));
    c.run_until_idle();
    c.job(j)
        .metrics
        .total_launch_span()
        .expect("total")
        .as_millis_f64()
}

fn main() {
    println!("Figure 10: measured and modelled 12 MB launch times (ms)");
    let measured_axis = pow2_range(1, 64);
    let measured = parallel_sweep(measured_axis.clone(), |&n| {
        repeat(REPS, u64::from(n) * 1009, |seed| {
            measured_launch_ms(n, seed)
        })
        .mean()
    });

    println!(
        "{:>8} {:>12} {:>14} {:>14}",
        "nodes", "measured", "model ES40", "model ideal"
    );
    let model_axis = pow2_range(1, 16_384);
    for &n in &model_axis {
        let meas = measured_axis
            .iter()
            .position(|&m| m == n)
            .map(|i| format!("{:.1}", measured[i]))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:>8} {:>12} {:>14.1} {:>14.1}",
            n,
            meas,
            storm_model::t_launch_es40(n).as_millis_f64(),
            storm_model::t_launch_ideal(n).as_millis_f64()
        );
    }

    let m64 = measured[measured_axis.iter().position(|&n| n == 64).unwrap()];
    let rows = vec![
        Comparison::new("measured 12 MB launch, 64 nodes", Some(110.0), m64, "ms"),
        Comparison::new(
            "modelled launch at 16 384 nodes (ES40)",
            Some(135.0),
            storm_model::t_launch_es40(16_384).as_millis_f64(),
            "ms",
        ),
    ];
    println!("\n{}", render_comparisons("Fig. 10 anchors", &rows));

    // Measured tracks the model at overlapping sizes.
    for (i, &n) in measured_axis.iter().enumerate() {
        let model = storm_model::t_launch_es40(n).as_millis_f64();
        let err = (measured[i] - model).abs() / model;
        check(
            err < 0.15,
            &format!("measured vs model at {n} nodes within 15% ({err:.1}% off)"),
        );
    }
    // The model's scalability claims.
    let t16k = storm_model::t_launch_es40(16_384).as_millis_f64();
    check(
        t16k < 140.0,
        "a 12 MB binary launches in ~135 ms on 16 384 nodes",
    );
    let ideal64 = storm_model::t_launch_ideal(64).as_millis_f64();
    let es40_64 = storm_model::t_launch_es40(64).as_millis_f64();
    check(
        ideal64 < es40_64,
        "the ideal-I/O-bus machine is faster at small scale",
    );
    let gap16k = (storm_model::t_launch_es40(16_384).as_millis_f64()
        - storm_model::t_launch_ideal(16_384).as_millis_f64())
    .abs();
    check(
        gap16k < 12.0,
        "both models converge beyond ~4 096 nodes (network-broadcast-bound)",
    );
    println!("fig10: all shape checks passed");
}
