//! Core identifier and destination-set types for the mechanisms.

use std::fmt;

/// A compute node's index within the cluster (0-based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of a global variable — the same slot on every node ("data at the
/// same virtual address on all nodes", §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub u32);

/// Index of a global event — the same slot on every node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(pub u32);

/// The comparison operators COMPARE-AND-WRITE supports (§2.2: ≥, <, =, ≠).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `global ≥ local`
    Ge,
    /// `global < local`
    Lt,
    /// `global = local`
    Eq,
    /// `global ≠ local`
    Ne,
}

impl CmpOp {
    /// Evaluate `global ⊕ local`.
    pub fn eval(self, global: i64, local: i64) -> bool {
        match self {
            CmpOp::Ge => global >= local,
            CmpOp::Lt => global < local,
            CmpOp::Eq => global == local,
            CmpOp::Ne => global != local,
        }
    }
}

/// A destination set of nodes. The mechanisms operate on *sets* of nodes
/// (possibly a single node) — §2.2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeSet {
    /// All `n` nodes of the cluster: `0..n`.
    All(u32),
    /// A contiguous range `[start, start+len)` — what the buddy allocator
    /// hands out.
    Range {
        /// First node in the set.
        start: u32,
        /// Number of nodes.
        len: u32,
    },
    /// An explicit list (sorted, deduplicated on construction).
    List(Vec<NodeId>),
}

impl NodeSet {
    /// The single-node set.
    pub fn single(node: NodeId) -> Self {
        NodeSet::Range {
            start: node.0,
            len: 1,
        }
    }

    /// Build a list set (sorts and deduplicates).
    pub fn from_list(mut nodes: Vec<NodeId>) -> Self {
        nodes.sort_unstable();
        nodes.dedup();
        NodeSet::List(nodes)
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> u32 {
        match self {
            NodeSet::All(n) => *n,
            NodeSet::Range { len, .. } => *len,
            NodeSet::List(v) => u32::try_from(v.len()).expect("node set too large"),
        }
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `node` belongs to the set.
    pub fn contains(&self, node: NodeId) -> bool {
        match self {
            NodeSet::All(n) => node.0 < *n,
            NodeSet::Range { start, len } => node.0 >= *start && node.0 < start + len,
            NodeSet::List(v) => v.binary_search(&node).is_ok(),
        }
    }

    /// Iterate over member nodes in ascending order. The iterator is a
    /// concrete enum (not a boxed trait object), so iterating a set costs
    /// no heap allocation — this sits on the simulator's per-event hot path
    /// (every COMPARE-AND-WRITE evaluates it over the whole set).
    pub fn iter(&self) -> NodeSetIter<'_> {
        match self {
            NodeSet::All(n) => NodeSetIter::Range(0..*n),
            NodeSet::Range { start, len } => NodeSetIter::Range(*start..start + len),
            NodeSet::List(v) => NodeSetIter::List(v.iter()),
        }
    }

    /// The `rank`-th member in ascending order.
    pub fn get(&self, rank: u32) -> NodeId {
        match self {
            NodeSet::All(_) => NodeId(rank),
            NodeSet::Range { start, .. } => NodeId(start + rank),
            NodeSet::List(v) => v[rank as usize],
        }
    }
}

/// Allocation-free iterator over a [`NodeSet`]'s members.
#[derive(Debug, Clone)]
pub enum NodeSetIter<'a> {
    /// Contiguous node indices.
    Range(std::ops::Range<u32>),
    /// Slice of an explicit list.
    List(std::slice::Iter<'a, NodeId>),
}

impl Iterator for NodeSetIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        match self {
            NodeSetIter::Range(r) => r.next().map(NodeId),
            NodeSetIter::List(it) => it.next().copied(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            NodeSetIter::Range(r) => r.size_hint(),
            NodeSetIter::List(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for NodeSetIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_ops_cover_paper_semantics() {
        assert!(CmpOp::Ge.eval(5, 5));
        assert!(CmpOp::Ge.eval(6, 5));
        assert!(!CmpOp::Ge.eval(4, 5));
        assert!(CmpOp::Lt.eval(4, 5));
        assert!(!CmpOp::Lt.eval(5, 5));
        assert!(CmpOp::Eq.eval(7, 7));
        assert!(!CmpOp::Eq.eval(7, 8));
        assert!(CmpOp::Ne.eval(7, 8));
        assert!(!CmpOp::Ne.eval(7, 7));
    }

    #[test]
    fn node_set_membership_and_iteration() {
        let all = NodeSet::All(4);
        assert_eq!(all.len(), 4);
        assert!(all.contains(NodeId(3)));
        assert!(!all.contains(NodeId(4)));
        assert_eq!(all.iter().count(), 4);

        let range = NodeSet::Range { start: 8, len: 4 };
        assert!(range.contains(NodeId(8)));
        assert!(range.contains(NodeId(11)));
        assert!(!range.contains(NodeId(12)));
        assert!(!range.contains(NodeId(7)));
        assert_eq!(
            range.iter().map(|n| n.0).collect::<Vec<_>>(),
            vec![8, 9, 10, 11]
        );

        let list = NodeSet::from_list(vec![NodeId(5), NodeId(1), NodeId(5), NodeId(3)]);
        assert_eq!(list.len(), 3);
        assert!(list.contains(NodeId(3)));
        assert!(!list.contains(NodeId(2)));
        assert_eq!(list.iter().map(|n| n.0).collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn single_and_empty_sets() {
        let s = NodeSet::single(NodeId(9));
        assert_eq!(s.len(), 1);
        assert!(s.contains(NodeId(9)));
        assert!(!s.is_empty());
        let e = NodeSet::from_list(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.iter().count(), 0);
    }
}
