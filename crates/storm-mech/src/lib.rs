//! # storm-mech — the STORM mechanisms
//!
//! §2.2 of the paper defines the *entire* middle layer of STORM as three
//! operations, chosen to "encapsulate all of the communication and
//! synchronization mechanisms required by a resource-management system":
//!
//! * **XFER-AND-SIGNAL** — transfer (PUT) a block of data from local memory
//!   to the global memory of a set of nodes; optionally signal a local
//!   and/or remote event on completion. Non-blocking; atomic (all nodes or,
//!   on a network error, none).
//! * **TEST-EVENT** — poll a local event, optionally blocking.
//! * **COMPARE-AND-WRITE** — compare a global variable on a set of nodes
//!   against a local value with one of {≥, <, =, ≠}; if the condition holds
//!   on *all* nodes, optionally write a new value to a (possibly different)
//!   global variable. Sequentially consistent.
//!
//! *Global data* means data at the same virtual address on every node —
//! modelled here by [`GlobalMemory`], where a [`VarId`]/[`EventId`] indexes
//! the same slot in every node's table.
//!
//! On QsNET the mechanisms map directly onto hardware multicast, network
//! conditionals and remotely-signalled events; on Ethernet/Myrinet/
//! InfiniBand they are emulated by a thin software layer using
//! logarithmic-depth trees ([`MechanismImpl::EmulatedTree`]). The timing
//! difference between those two implementations is exactly what Table 5
//! quantifies and what the `ablation_hw_vs_emulated` bench measures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mech;
pub mod memory;
pub mod types;

pub use mech::{
    CawResult, ErrorBurst, FaultPlan, MechanismImpl, Mechanisms, XferError, XferFanout, XferTiming,
};
pub use memory::{CawAudit, GlobalMemory, MemoryState};
pub use types::{CmpOp, EventId, NodeId, NodeSet, NodeSetIter, VarId};
