//! Global memory: per-node variable and event tables.
//!
//! "Global data refers to data at the same virtual address on all nodes"
//! (§2.2, point 1). We model an allocation as an index that is valid on
//! every node simultaneously; depending on the implementation the paper
//! notes this data may live in main memory or NIC memory — for timing that
//! distinction is captured by the network model, not here.
//!
//! Events are *timestamped*: XFER-AND-SIGNAL is non-blocking and its remote
//! signal only becomes visible when the transfer lands, so an event carries
//! the simulated instant at which it was signalled and
//! [`GlobalMemory::event_signalled`] takes the observer's current time. This
//! keeps TEST-EVENT causally correct inside the discrete-event simulation.

use crate::types::{EventId, NodeId, NodeSet, VarId};
use std::collections::BTreeMap;
use storm_sim::SimTime;

/// Audit record of the most recent set-wide (COMPARE-AND-WRITE) write
/// applied to a variable: the node set it covered and the value it wrote.
/// While no later per-node write supersedes it, sequential consistency
/// demands every node of the set still reads exactly this value — the
/// all-or-nothing visibility probe the DST `CawVisibility` oracle checks.
#[derive(Debug, Clone, PartialEq)]
pub struct CawAudit {
    /// The node set the write half covered.
    pub set: NodeSet,
    /// The value written to every node of the set.
    pub value: i64,
}

/// Per-node global variables and events for a whole cluster.
#[derive(Debug, Clone)]
pub struct GlobalMemory {
    nodes: u32,
    /// `vars[node][var]`
    vars: Vec<Vec<i64>>,
    /// `events[node][event]` — the instant the event was signalled, if any.
    events: Vec<Vec<Option<SimTime>>>,
    /// When enabled, the last set-wide write per variable (keyed by var
    /// id), invalidated by any later per-node write to that variable.
    /// Disabled by default: the audit trail costs a map insert per CAW
    /// write half, so only DST harnesses turn it on.
    caw_audit: Option<BTreeMap<u32, CawAudit>>,
}

impl GlobalMemory {
    /// Memory for a cluster of `nodes` nodes with no allocations yet.
    pub fn new(nodes: u32) -> Self {
        assert!(nodes > 0);
        GlobalMemory {
            nodes,
            vars: vec![Vec::new(); nodes as usize],
            events: vec![Vec::new(); nodes as usize],
            caw_audit: None,
        }
    }

    /// Enable the CAW write-visibility audit trail (see [`CawAudit`]).
    /// Idempotent; the trail starts empty. DST harnesses call this before
    /// running so the `CawVisibility` oracle has state to check; the
    /// default-off trail keeps production hot paths at a single branch.
    pub fn enable_caw_audit(&mut self) {
        if self.caw_audit.is_none() {
            self.caw_audit = Some(BTreeMap::new());
        }
    }

    /// The live CAW audit entries — `(var, audit)` in var order — or an
    /// empty iterator when auditing is disabled.
    pub fn caw_audits(&self) -> impl Iterator<Item = (VarId, &CawAudit)> {
        self.caw_audit
            .iter()
            .flat_map(|m| m.iter().map(|(&v, a)| (VarId(v), a)))
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Allocate a global variable (same id on all nodes), initialised to
    /// `init` everywhere.
    pub fn alloc_var(&mut self, init: i64) -> VarId {
        let id = VarId(u32::try_from(self.vars[0].len()).expect("too many vars"));
        for v in &mut self.vars {
            v.push(init);
        }
        id
    }

    /// Allocate a global event (same id on all nodes), unsignalled.
    pub fn alloc_event(&mut self) -> EventId {
        let id = EventId(u32::try_from(self.events[0].len()).expect("too many events"));
        for e in &mut self.events {
            e.push(None);
        }
        id
    }

    /// Read a variable on one node.
    pub fn read(&self, node: NodeId, var: VarId) -> i64 {
        self.vars[node.index()][var.0 as usize]
    }

    /// Write a variable on one node. A per-node write supersedes any
    /// audited set-wide write of the same variable (the nodes are free to
    /// diverge again), so it retires the audit entry.
    pub fn write(&mut self, node: NodeId, var: VarId, value: i64) {
        if let Some(audit) = &mut self.caw_audit {
            audit.remove(&var.0);
        }
        self.vars[node.index()][var.0 as usize] = value;
    }

    /// Write a variable on a set of nodes (the COMPARE-AND-WRITE write half;
    /// sequentially consistent because the simulation applies it as one
    /// indivisible action). Records the audit entry when auditing is on.
    pub fn write_set(&mut self, set: &NodeSet, var: VarId, value: i64) {
        for node in set.iter() {
            self.vars[node.index()][var.0 as usize] = value;
        }
        if let Some(audit) = &mut self.caw_audit {
            audit.insert(
                var.0,
                CawAudit {
                    set: set.clone(),
                    value,
                },
            );
        }
    }

    /// Add `delta` to a variable on one node, returning the new value.
    /// Retires any audit entry for the variable, like [`GlobalMemory::
    /// write`].
    pub fn add(&mut self, node: NodeId, var: VarId, delta: i64) -> i64 {
        if let Some(audit) = &mut self.caw_audit {
            audit.remove(&var.0);
        }
        let slot = &mut self.vars[node.index()][var.0 as usize];
        *slot += delta;
        *slot
    }

    /// Audit-invisible single-node write: changes one node's copy of `var`
    /// *without* retiring the audit entry — the tamper a DST harness uses
    /// to simulate a torn COMPARE-AND-WRITE (partial write application)
    /// and prove the `CawVisibility` oracle catches it. Never called by
    /// production code.
    pub fn poke(&mut self, node: NodeId, var: VarId, value: i64) {
        self.vars[node.index()][var.0 as usize] = value;
    }

    /// Is the CAW write-visibility audit trail enabled? Parallel shard
    /// extraction refuses to split the memory while auditing is on,
    /// because `write`/`add` on a shard could not retire the *global*
    /// audit entry without cross-shard communication.
    pub fn caw_audit_enabled(&self) -> bool {
        self.caw_audit.is_some()
    }

    /// Detach one node's variable and event rows, leaving empty rows in
    /// place. Used by parallel shard extraction so a worker can mutate the
    /// node's memory with exclusive ownership; pair with
    /// [`GlobalMemory::restore_node_rows`]. Panics if auditing is enabled
    /// (see [`GlobalMemory::caw_audit_enabled`]).
    pub fn take_node_rows(&mut self, node: NodeId) -> (Vec<i64>, Vec<Option<SimTime>>) {
        assert!(
            self.caw_audit.is_none(),
            "cannot shard global memory while CAW auditing is enabled"
        );
        (
            std::mem::take(&mut self.vars[node.index()]),
            std::mem::take(&mut self.events[node.index()]),
        )
    }

    /// Re-attach rows detached by [`GlobalMemory::take_node_rows`].
    pub fn restore_node_rows(
        &mut self,
        node: NodeId,
        vars: Vec<i64>,
        events: Vec<Option<SimTime>>,
    ) {
        self.vars[node.index()] = vars;
        self.events[node.index()] = events;
    }

    /// Is `event` visible as signalled to an observer on `node` at `now`?
    pub fn event_signalled(&self, node: NodeId, event: EventId, now: SimTime) -> bool {
        match self.events[node.index()][event.0 as usize] {
            Some(at) => at <= now,
            None => false,
        }
    }

    /// When `event` was (or will be) signalled on `node`, if at all.
    pub fn signalled_at(&self, node: NodeId, event: EventId) -> Option<SimTime> {
        self.events[node.index()][event.0 as usize]
    }

    /// Signal `event` on `node`, visible from instant `at`. An event that is
    /// already signalled keeps its *earlier* timestamp (signals are sticky
    /// until cleared).
    pub fn signal(&mut self, node: NodeId, event: EventId, at: SimTime) {
        let slot = &mut self.events[node.index()][event.0 as usize];
        *slot = Some(match *slot {
            Some(prev) => prev.min(at),
            None => at,
        });
    }

    /// Signal `event` on every node of `set` at instant `at`.
    pub fn signal_set(&mut self, set: &NodeSet, event: EventId, at: SimTime) {
        for node in set.iter() {
            self.signal(node, event, at);
        }
    }

    /// Clear `event` on `node` (consume the signal).
    pub fn clear_event(&mut self, node: NodeId, event: EventId) {
        self.events[node.index()][event.0 as usize] = None;
    }

    /// Values of `var` across a node set, in ascending node order — used by
    /// monitoring/gather examples.
    pub fn gather(&self, set: &NodeSet, var: VarId) -> Vec<i64> {
        set.iter().map(|n| self.read(n, var)).collect()
    }

    /// Full-fidelity image of the memory for checkpointing: every node's
    /// variable and event tables plus the CAW audit trail (if enabled).
    pub fn export_state(&self) -> MemoryState {
        MemoryState {
            nodes: self.nodes,
            vars: self.vars.clone(),
            events: self.events.clone(),
            caw_audit: self
                .caw_audit
                .as_ref()
                .map(|m| m.iter().map(|(&v, a)| (v, a.clone())).collect()),
        }
    }

    /// Rebuild a memory from an exported image. See
    /// [`GlobalMemory::export_state`].
    pub fn import_state(state: MemoryState) -> Self {
        GlobalMemory {
            nodes: state.nodes,
            vars: state.vars,
            events: state.events,
            caw_audit: state.caw_audit.map(|v| v.into_iter().collect()),
        }
    }
}

/// Serializable image of a [`GlobalMemory`], produced by
/// [`GlobalMemory::export_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryState {
    /// Number of nodes.
    pub nodes: u32,
    /// `vars[node][var]` values.
    pub vars: Vec<Vec<i64>>,
    /// `events[node][event]` signal instants.
    pub events: Vec<Vec<Option<SimTime>>>,
    /// The CAW audit trail in var order, `None` when auditing is off.
    pub caw_audit: Option<Vec<(u32, CawAudit)>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::CmpOp;

    #[test]
    fn allocation_is_global() {
        let mut m = GlobalMemory::new(4);
        let v = m.alloc_var(7);
        for n in 0..4 {
            assert_eq!(m.read(NodeId(n), v), 7);
        }
        let e = m.alloc_event();
        for n in 0..4 {
            assert!(!m.event_signalled(NodeId(n), e, SimTime::MAX));
        }
    }

    #[test]
    fn ids_are_stable_across_nodes() {
        let mut m = GlobalMemory::new(3);
        let a = m.alloc_var(1);
        let b = m.alloc_var(2);
        assert_ne!(a, b);
        m.write(NodeId(2), b, 99);
        assert_eq!(m.read(NodeId(2), b), 99);
        assert_eq!(m.read(NodeId(0), b), 2);
        assert_eq!(m.read(NodeId(2), a), 1);
    }

    #[test]
    fn set_writes_and_gather() {
        let mut m = GlobalMemory::new(8);
        let v = m.alloc_var(0);
        let set = NodeSet::Range { start: 2, len: 3 };
        m.write_set(&set, v, 5);
        assert_eq!(m.gather(&NodeSet::All(8), v), vec![0, 0, 5, 5, 5, 0, 0, 0]);
        assert_eq!(m.gather(&set, v), vec![5, 5, 5]);
    }

    #[test]
    fn events_become_visible_at_their_timestamp() {
        let mut m = GlobalMemory::new(4);
        let e = m.alloc_event();
        let at = SimTime::from_millis(10);
        m.signal_set(&NodeSet::All(4), e, at);
        // Not yet visible before the signal instant…
        assert!(!m.event_signalled(NodeId(3), e, SimTime::from_millis(9)));
        // …visible at and after it.
        assert!(m.event_signalled(NodeId(3), e, at));
        assert!(m.event_signalled(NodeId(3), e, SimTime::from_millis(11)));
        assert_eq!(m.signalled_at(NodeId(3), e), Some(at));
        m.clear_event(NodeId(3), e);
        assert!(!m.event_signalled(NodeId(3), e, SimTime::from_secs(1)));
        assert!(m.event_signalled(NodeId(2), e, at));
    }

    #[test]
    fn re_signalling_keeps_earliest_timestamp() {
        let mut m = GlobalMemory::new(1);
        let e = m.alloc_event();
        m.signal(NodeId(0), e, SimTime::from_millis(5));
        m.signal(NodeId(0), e, SimTime::from_millis(3));
        assert_eq!(m.signalled_at(NodeId(0), e), Some(SimTime::from_millis(3)));
        m.signal(NodeId(0), e, SimTime::from_millis(8));
        assert_eq!(m.signalled_at(NodeId(0), e), Some(SimTime::from_millis(3)));
    }

    #[test]
    fn add_accumulates() {
        let mut m = GlobalMemory::new(2);
        let v = m.alloc_var(10);
        assert_eq!(m.add(NodeId(1), v, 5), 15);
        assert_eq!(m.add(NodeId(1), v, -3), 12);
        assert_eq!(m.read(NodeId(0), v), 10);
    }

    #[test]
    fn caw_audit_records_and_retires() {
        let mut m = GlobalMemory::new(4);
        let v = m.alloc_var(0);
        // Disabled by default: set writes leave no trail.
        m.write_set(&NodeSet::All(4), v, 1);
        assert_eq!(m.caw_audits().count(), 0);
        m.enable_caw_audit();
        m.enable_caw_audit(); // idempotent
        m.write_set(&NodeSet::All(4), v, 2);
        let (var, audit) = m.caw_audits().next().unwrap();
        assert_eq!((var, audit.value), (v, 2));
        // `add` is a per-node write: it retires the entry.
        m.add(NodeId(3), v, 1);
        assert_eq!(m.caw_audits().count(), 0);
        // A newer set write replaces an older audit for the same var.
        m.write_set(&NodeSet::All(4), v, 7);
        m.write_set(&NodeSet::Range { start: 0, len: 2 }, v, 9);
        let audits: Vec<_> = m.caw_audits().collect();
        assert_eq!(audits.len(), 1);
        assert_eq!(audits[0].1.value, 9);
    }

    #[test]
    fn heartbeat_counter_pattern() {
        // The fault-detection idiom: slaves increment a counter, the master
        // checks `counter ≥ round` on all nodes.
        let mut m = GlobalMemory::new(4);
        let hb = m.alloc_var(0);
        let all = NodeSet::All(4);
        for n in 0..4 {
            m.add(NodeId(n), hb, 1);
        }
        assert!(m.gather(&all, hb).iter().all(|&v| CmpOp::Ge.eval(v, 1)));
        // One node misses a beat.
        for n in [0u32, 1, 3] {
            m.add(NodeId(n), hb, 1);
        }
        assert!(!m.gather(&all, hb).iter().all(|&v| CmpOp::Ge.eval(v, 2)));
    }
}
