//! The mechanism layer: timing + semantics of XFER-AND-SIGNAL, TEST-EVENT
//! and COMPARE-AND-WRITE.
//!
//! [`Mechanisms`] lives in the simulation's shared world; dæmons call into
//! it while handling messages. Each call returns *when* the operation
//! completes in simulated time; the caller is responsible for scheduling its
//! own follow-up messages at those instants (the engine's `send_at`).
//!
//! Semantic points from §2.2 honoured here:
//!
//! * **Atomicity** — under an injected network error, XFER-AND-SIGNAL
//!   delivers to *no* node ([`XferError`]); COMPARE-AND-WRITE's write half
//!   is applied to all nodes of the set as one indivisible action.
//! * **Sequential consistency** — concurrent COMPARE-AND-WRITEs are applied
//!   in the engine's total event order, so all nodes observe the same final
//!   value.
//! * **Non-blocking XFER-AND-SIGNAL** — the only way to detect completion is
//!   TEST-EVENT on an event the transfer signals; events are timestamped so
//!   a poll before the transfer lands correctly reports "not signalled".
//!
//! One simplification: COMPARE-AND-WRITE evaluates its condition against
//! global-variable state at *issue* time rather than at fan-out-arrival
//! time. The in-flight window is the barrier latency (µs) while the dæmons
//! act on heartbeat boundaries (ms), so no STORM protocol can observe the
//! difference; the determinism tests pin this behaviour.

use crate::memory::GlobalMemory;
use crate::types::{CmpOp, EventId, NodeId, NodeSet, VarId};
use storm_net::{BackgroundLoad, BufferPlacement, NetworkKind, QsNetModel};
use storm_sim::{tree_depth, DeterministicRng, GroupSchedule, SimSpan, SimTime};

/// How the mechanisms are implemented on the target network.
#[derive(Debug, Clone, Copy)]
pub enum MechanismImpl {
    /// Direct mapping onto QsNET hardware multicast / network conditionals.
    Hardware(QsNetModel),
    /// Thin software layer organising the nodes in a logarithmic tree
    /// (Ethernet / Myrinet / InfiniBand — §4 "Portability").
    EmulatedTree {
        /// Which network the emulation runs over (sets per-hop costs).
        kind: NetworkKind,
        /// Tree fan-out (the paper's emulations use binary/quaternary trees;
        /// default 4).
        fanout: u32,
    },
}

impl MechanismImpl {
    /// The default software-emulation tree for `kind`.
    pub fn emulated(kind: NetworkKind) -> Self {
        MechanismImpl::EmulatedTree { kind, fanout: 4 }
    }
}

/// Completion times of one XFER-AND-SIGNAL.
#[derive(Debug, Clone, PartialEq)]
pub struct XferTiming {
    /// When the source's local event fires (DMA drained from the source).
    pub source_complete: SimTime,
    /// When the data (and the remote event signal) is visible on each
    /// destination, in `NodeSet` iteration order. On hardware multicast all
    /// entries are equal; on an emulated tree they grow with tree depth.
    pub arrivals: Vec<(NodeId, SimTime)>,
}

impl XferTiming {
    /// The latest destination arrival (the whole set has the data).
    pub fn all_arrived(&self) -> SimTime {
        self.arrivals
            .iter()
            .map(|&(_, t)| t)
            .max()
            .unwrap_or(self.source_complete)
    }
}

/// Completion profile of one XFER-AND-SIGNAL in O(1) space: per-rank
/// arrival instants are *computed* instead of materialised as a `Vec` —
/// the allocation-free counterpart of [`XferTiming`] for hot paths that
/// multicast to thousands of nodes every timeslice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XferFanout {
    /// When the source's local event fires (DMA drained from the source).
    pub source_complete: SimTime,
    /// Number of destinations.
    pub len: u32,
    kind: FanoutKind,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum FanoutKind {
    /// Hardware multicast: every destination at one instant.
    Uniform { arrival: SimTime },
    /// Software tree: rank `r` arrives at
    /// `base + per_hop × tree_depth(r+1, fanout)`.
    Tree {
        base: SimTime,
        per_hop: SimSpan,
        fanout: u32,
    },
}

impl XferFanout {
    /// Arrival instant of the `rank`-th destination (in `NodeSet` order).
    pub fn arrival(&self, rank: u32) -> SimTime {
        match self.kind {
            FanoutKind::Uniform { arrival } => arrival,
            FanoutKind::Tree {
                base,
                per_hop,
                fanout,
            } => base + per_hop * tree_depth(u64::from(rank) + 1, u64::from(fanout)),
        }
    }

    /// The latest destination arrival (the whole set has the data).
    pub fn all_arrived(&self) -> SimTime {
        match self.kind {
            FanoutKind::Uniform { arrival } => arrival,
            _ => self.arrival(self.len - 1),
        }
    }

    /// The `(base, schedule)` pair for the engine's group delivery:
    /// `schedule.arrival(base, rank)` equals [`XferFanout::arrival`] for
    /// every rank.
    pub fn delivery_schedule(&self) -> (SimTime, GroupSchedule) {
        match self.kind {
            FanoutKind::Uniform { arrival } => (arrival, GroupSchedule::Simultaneous),
            FanoutKind::Tree {
                base,
                per_hop,
                fanout,
            } => (base, GroupSchedule::FanoutTree { per_hop, fanout }),
        }
    }
}

/// XFER-AND-SIGNAL failure: a network error aborted the transfer; per the
/// paper's atomicity guarantee, **no** destination received anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XferError;

impl std::fmt::Display for XferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "network error: transfer atomically aborted")
    }
}

impl std::error::Error for XferError {}

/// Result of one COMPARE-AND-WRITE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CawResult {
    /// When the initiator learns the outcome.
    pub complete: SimTime,
    /// Whether the condition held on **all** nodes of the set.
    pub satisfied: bool,
}

/// A transient fault window: while `from ≤ now < until`, XFER-AND-SIGNAL
/// operations fail with at least `prob` (layered over the steady-state
/// probability; the maximum wins).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBurst {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Error probability inside the window.
    pub prob: f64,
}

/// Failure injection for the mechanisms.
///
/// Deterministic given the simulation seed: probabilities are evaluated
/// against the engine's seeded RNG, and **no RNG is consumed when the
/// effective probability is zero**, so an inert plan leaves a run
/// bit-identical to one with no plan at all.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Steady-state probability that any given XFER-AND-SIGNAL suffers a
    /// network error (and is atomically aborted). Zero by default.
    pub xfer_error_prob: f64,
    /// Probability that a COMPARE-AND-WRITE query is lost before reaching
    /// the network: no write is applied anywhere (atomicity) and the
    /// initiator learns nothing, so it must re-poll. Only honoured by
    /// callers that go through [`Mechanisms::compare_and_write_faulty`].
    pub caw_drop_prob: f64,
    /// Transient error-burst windows layered on top of `xfer_error_prob`.
    pub bursts: Vec<ErrorBurst>,
}

impl FaultPlan {
    /// The XFER-AND-SIGNAL error probability in effect at `now` (steady
    /// state plus any active burst; the maximum wins).
    pub fn xfer_error_prob_at(&self, now: SimTime) -> f64 {
        let mut p = self.xfer_error_prob;
        for b in &self.bursts {
            if now >= b.from && now < b.until {
                p = p.max(b.prob);
            }
        }
        p
    }

    /// True when the plan can never inject anything.
    pub fn is_inert(&self) -> bool {
        self.xfer_error_prob == 0.0 && self.caw_drop_prob == 0.0 && self.bursts.is_empty()
    }

    /// Alias for [`FaultPlan::is_inert`] under the name the DST harness
    /// uses: a *quiet* plan consumes no RNG anywhere in the mechanism
    /// layer, so a run with one installed is bit-identical to a run with
    /// no plan at all. The per-operation gates
    /// ([`FaultPlan::caw_can_drop`], [`FaultPlan::xfer_error_prob_at`])
    /// are what enforce it operation by operation.
    pub fn is_quiet(&self) -> bool {
        self.is_inert()
    }

    /// True when a COMPARE-AND-WRITE issued now may be dropped — the exact
    /// gate [`Mechanisms::compare_and_write_faulty`] uses to decide
    /// whether to consume RNG. A quiet plan never drops.
    pub fn caw_can_drop(&self) -> bool {
        self.caw_drop_prob > 0.0
    }
}

/// The mechanism layer for one cluster.
#[derive(Debug)]
pub struct Mechanisms {
    imp: MechanismImpl,
    /// Global variables and events.
    pub memory: GlobalMemory,
    /// Failure injection plan.
    pub fault: FaultPlan,
    xfer_count: u64,
    caw_count: u64,
}

impl Mechanisms {
    /// Mechanisms over `nodes` nodes with the given implementation.
    pub fn new(imp: MechanismImpl, nodes: u32) -> Self {
        Mechanisms {
            imp,
            memory: GlobalMemory::new(nodes),
            fault: FaultPlan::default(),
            xfer_count: 0,
            caw_count: 0,
        }
    }

    /// Hardware QsNET mechanisms for a cluster of `nodes`.
    pub fn qsnet(nodes: u32) -> Self {
        Self::new(MechanismImpl::Hardware(QsNetModel::for_nodes(nodes)), nodes)
    }

    /// The implementation in use.
    pub fn implementation(&self) -> &MechanismImpl {
        &self.imp
    }

    /// Number of XFER-AND-SIGNAL operations issued.
    pub fn xfer_count(&self) -> u64 {
        self.xfer_count
    }

    /// Number of COMPARE-AND-WRITE operations issued.
    pub fn caw_count(&self) -> u64 {
        self.caw_count
    }

    /// Overwrite the lifetime operation counters — the checkpoint/restore
    /// path uses this so counters continue from the checkpointed values.
    pub fn restore_counters(&mut self, xfer_count: u64, caw_count: u64) {
        self.xfer_count = xfer_count;
        self.caw_count = caw_count;
    }

    /// **XFER-AND-SIGNAL** — PUT `bytes` from the initiator to `dests`,
    /// optionally signalling a local event (on the initiating node
    /// `src_node`) and/or a remote event (on every destination).
    ///
    /// Returns the timing on success. On an injected network error, returns
    /// [`XferError`] and — per the atomicity guarantee — signals nothing.
    #[allow(clippy::too_many_arguments)]
    pub fn xfer_and_signal(
        &mut self,
        now: SimTime,
        src_node: NodeId,
        dests: &NodeSet,
        bytes: u64,
        placement: BufferPlacement,
        local_event: Option<EventId>,
        remote_event: Option<EventId>,
        load: BackgroundLoad,
        rng: &mut DeterministicRng,
    ) -> Result<XferTiming, XferError> {
        let fan = self.xfer_fanout(
            now,
            src_node,
            dests,
            bytes,
            placement,
            local_event,
            remote_event,
            load,
            rng,
        )?;
        Ok(XferTiming {
            source_complete: fan.source_complete,
            arrivals: dests
                .iter()
                .enumerate()
                .map(|(rank, n)| (n, fan.arrival(rank as u32)))
                .collect(),
        })
    }

    /// [`Mechanisms::xfer_and_signal`] without the per-destination `Vec`:
    /// identical semantics, timing and RNG consumption, but the arrival
    /// profile comes back as an O(1) [`XferFanout`] — what the MM's
    /// per-timeslice multicasts (strobe, heartbeat, launch command,
    /// broadcast fragment) use so a fan-out to N nodes allocates nothing.
    #[allow(clippy::too_many_arguments)]
    pub fn xfer_fanout(
        &mut self,
        now: SimTime,
        src_node: NodeId,
        dests: &NodeSet,
        bytes: u64,
        placement: BufferPlacement,
        local_event: Option<EventId>,
        remote_event: Option<EventId>,
        load: BackgroundLoad,
        rng: &mut DeterministicRng,
    ) -> Result<XferFanout, XferError> {
        assert!(!dests.is_empty(), "XFER-AND-SIGNAL needs a destination set");
        self.xfer_count += 1;
        let err_prob = self.fault.xfer_error_prob_at(now);
        if err_prob > 0.0 && rng.uniform() < err_prob {
            return Err(XferError);
        }
        let fan = match &self.imp {
            MechanismImpl::Hardware(model) => {
                // Hardware multicast: one ordered, reliable fan-out; all
                // destinations see the data at the same instant.
                let base = model.broadcast_span(bytes, placement);
                let span = widen_by_load(base, bytes, load, model.broadcast_bw(placement));
                let arrival = now + span;
                XferFanout {
                    source_complete: arrival,
                    len: dests.len(),
                    kind: FanoutKind::Uniform { arrival },
                }
            }
            MechanismImpl::EmulatedTree { kind, fanout } => {
                // Software tree: the source sends to `fanout` children, each
                // forwards, … Depth of the i-th destination (in set order)
                // is ⌈log_fanout⌉ of its rank.
                let hop_cost = kind.emulation_hop_cost();
                let per_node_bw = kind
                    .mechanism_perf(self.memory.nodes())
                    .xfer_aggregate_bw
                    .map(|agg| agg / f64::from(self.memory.nodes()))
                    .unwrap_or(30.0e6); // conservative for GigE/IB store-and-forward
                let per_hop_xfer =
                    SimSpan::for_bytes(bytes, load.effective_bw(per_node_bw).max(1.0));
                let per_hop = load.inflate(hop_cost) + per_hop_xfer;
                XferFanout {
                    source_complete: now + per_hop,
                    len: dests.len(),
                    kind: FanoutKind::Tree {
                        base: now,
                        per_hop,
                        fanout: *fanout,
                    },
                }
            }
        };
        if let Some(ev) = remote_event {
            for (rank, n) in dests.iter().enumerate() {
                self.memory.signal(n, ev, fan.arrival(rank as u32));
            }
        }
        if let Some(ev) = local_event {
            self.memory.signal(src_node, ev, fan.source_complete);
        }
        Ok(fan)
    }

    /// **TEST-EVENT** — poll a local event at `now`. Returns whether it is
    /// signalled; never consumes the signal (use
    /// [`Mechanisms::consume_event`] for test-and-clear).
    pub fn test_event(&self, node: NodeId, event: EventId, now: SimTime) -> bool {
        self.memory.event_signalled(node, event, now)
    }

    /// Blocking-style TEST-EVENT: when the event will become visible (its
    /// signal timestamp, clamped to `now`), or `None` if unsignalled —
    /// callers schedule their wake-up at that instant.
    pub fn wait_event(&self, node: NodeId, event: EventId, now: SimTime) -> Option<SimTime> {
        self.memory.signalled_at(node, event).map(|at| at.max(now))
    }

    /// Test-and-clear: returns true (and clears) if signalled at `now`.
    pub fn consume_event(&mut self, node: NodeId, event: EventId, now: SimTime) -> bool {
        if self.memory.event_signalled(node, event, now) {
            self.memory.clear_event(node, event);
            true
        } else {
            false
        }
    }

    /// **COMPARE-AND-WRITE** — compare `var ⊕ value` on every node of `set`;
    /// if the condition holds on all of them, optionally apply
    /// `write = (target_var, new_value)` to all nodes of the set.
    ///
    /// Sequentially consistent: applied as one indivisible action in the
    /// engine's total order, so concurrent CAWs with different write values
    /// leave every node agreeing on the final value (last in event order
    /// wins).
    #[allow(clippy::too_many_arguments)]
    pub fn compare_and_write(
        &mut self,
        now: SimTime,
        set: &NodeSet,
        var: VarId,
        op: CmpOp,
        value: i64,
        write: Option<(VarId, i64)>,
        load: BackgroundLoad,
    ) -> CawResult {
        assert!(!set.is_empty(), "COMPARE-AND-WRITE needs a node set");
        self.caw_count += 1;
        let latency = match &self.imp {
            MechanismImpl::Hardware(model) => model.barrier_latency(),
            MechanismImpl::EmulatedTree { kind, .. } => {
                load.inflate(kind.mechanism_perf(set.len().max(2)).caw_latency)
            }
        };
        let satisfied = set.iter().all(|n| op.eval(self.memory.read(n, var), value));
        if satisfied {
            if let Some((target, new_value)) = write {
                self.memory.write_set(set, target, new_value);
            }
        }
        CawResult {
            complete: now + latency,
            satisfied,
        }
    }

    /// [`Mechanisms::compare_and_write`] routed through the fault plan: with
    /// probability [`FaultPlan::caw_drop_prob`] the query is lost in the
    /// network — atomically, so no write is applied anywhere and the
    /// initiator learns nothing (`None`); it must re-poll later, exactly as
    /// with a real lost network conditional. No RNG is consumed when the
    /// drop probability is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn compare_and_write_faulty(
        &mut self,
        now: SimTime,
        set: &NodeSet,
        var: VarId,
        op: CmpOp,
        value: i64,
        write: Option<(VarId, i64)>,
        load: BackgroundLoad,
        rng: &mut DeterministicRng,
    ) -> Option<CawResult> {
        if self.fault.caw_can_drop() && rng.uniform() < self.fault.caw_drop_prob {
            self.caw_count += 1; // issued, then lost
            return None;
        }
        Some(self.compare_and_write(now, set, var, op, value, write, load))
    }
}

/// Inflate a hardware-broadcast span by the background network load: the
/// fixed latency part stays, the bandwidth part stretches by 1/(1−load).
fn widen_by_load(base: SimSpan, bytes: u64, load: BackgroundLoad, bw: f64) -> SimSpan {
    if load.network == 0.0 {
        return base;
    }
    let data_part = SimSpan::for_bytes(bytes, bw);
    let fixed = base.saturating_sub(data_part);
    fixed + SimSpan::for_bytes(bytes, load.effective_bw(bw).max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DeterministicRng {
        DeterministicRng::new(1)
    }

    #[test]
    fn hardware_xfer_signals_remote_events_at_arrival() {
        let mut m = Mechanisms::qsnet(64);
        let ev = m.memory.alloc_event();
        let all = NodeSet::All(64);
        let now = SimTime::from_millis(1);
        let t = m
            .xfer_and_signal(
                now,
                NodeId(0),
                &all,
                512 * 1024,
                BufferPlacement::MainMemory,
                Some(ev),
                Some(ev),
                BackgroundLoad::NONE,
                &mut rng(),
            )
            .unwrap();
        // All arrivals identical on hardware multicast.
        let first = t.arrivals[0].1;
        assert!(t.arrivals.iter().all(|&(_, a)| a == first));
        assert_eq!(t.all_arrived(), first);
        assert!(first > now);
        // TEST-EVENT is causally correct: not visible before arrival.
        assert!(!m.test_event(NodeId(5), ev, now));
        assert!(m.test_event(NodeId(5), ev, first));
        assert_eq!(m.wait_event(NodeId(5), ev, now), Some(first));
        // Local event on the source fires at source_complete.
        assert!(m.test_event(NodeId(0), ev, t.source_complete));
        assert_eq!(m.xfer_count(), 1);
    }

    #[test]
    fn nonblocking_semantics_only_observable_via_test_event() {
        let mut m = Mechanisms::qsnet(4);
        let ev = m.memory.alloc_event();
        assert_eq!(m.wait_event(NodeId(1), ev, SimTime::ZERO), None);
        assert!(!m.consume_event(NodeId(1), ev, SimTime::MAX));
        m.memory.signal(NodeId(1), ev, SimTime::from_micros(3));
        assert!(m.consume_event(NodeId(1), ev, SimTime::from_micros(3)));
        // Consumed: gone.
        assert!(!m.test_event(NodeId(1), ev, SimTime::MAX));
    }

    #[test]
    fn xfer_atomicity_under_network_error() {
        let mut m = Mechanisms::qsnet(16);
        m.fault.xfer_error_prob = 1.0;
        let ev = m.memory.alloc_event();
        let r = m.xfer_and_signal(
            SimTime::ZERO,
            NodeId(0),
            &NodeSet::All(16),
            4096,
            BufferPlacement::MainMemory,
            Some(ev),
            Some(ev),
            BackgroundLoad::NONE,
            &mut rng(),
        );
        assert_eq!(r, Err(XferError));
        // Atomic abort: no node (including the source) saw a signal.
        for n in 0..16 {
            assert!(!m.test_event(NodeId(n), ev, SimTime::MAX));
        }
    }

    #[test]
    fn caw_checks_all_nodes() {
        let mut m = Mechanisms::qsnet(8);
        let v = m.memory.alloc_var(0);
        let all = NodeSet::All(8);
        for n in 0..8 {
            m.memory.write(NodeId(n), v, 3);
        }
        let r = m.compare_and_write(
            SimTime::ZERO,
            &all,
            v,
            CmpOp::Ge,
            3,
            None,
            BackgroundLoad::NONE,
        );
        assert!(r.satisfied);
        assert!(r.complete > SimTime::ZERO);
        // One node lags: condition fails on the whole set.
        m.memory.write(NodeId(5), v, 2);
        let r2 = m.compare_and_write(
            SimTime::ZERO,
            &all,
            v,
            CmpOp::Ge,
            3,
            None,
            BackgroundLoad::NONE,
        );
        assert!(!r2.satisfied);
    }

    #[test]
    fn caw_write_applies_to_whole_set_only_when_satisfied() {
        let mut m = Mechanisms::qsnet(8);
        let cond = m.memory.alloc_var(1);
        let target = m.memory.alloc_var(0);
        let set = NodeSet::Range { start: 2, len: 4 };
        let r = m.compare_and_write(
            SimTime::ZERO,
            &set,
            cond,
            CmpOp::Eq,
            1,
            Some((target, 42)),
            BackgroundLoad::NONE,
        );
        assert!(r.satisfied);
        assert_eq!(m.memory.gather(&set, target), vec![42; 4]);
        // Outside the set: untouched.
        assert_eq!(m.memory.read(NodeId(0), target), 0);
        // Unsatisfied condition leaves the target alone.
        let r2 = m.compare_and_write(
            SimTime::ZERO,
            &set,
            cond,
            CmpOp::Ne,
            1,
            Some((target, 7)),
            BackgroundLoad::NONE,
        );
        assert!(!r2.satisfied);
        assert_eq!(m.memory.gather(&set, target), vec![42; 4]);
    }

    #[test]
    fn concurrent_caws_converge_to_single_value() {
        // §2.2 point 2: simultaneous CAWs differing only in write value
        // leave all nodes seeing the same value.
        let mut m = Mechanisms::qsnet(32);
        let cond = m.memory.alloc_var(0);
        let target = m.memory.alloc_var(-1);
        let all = NodeSet::All(32);
        for writer in 0..10 {
            m.compare_and_write(
                SimTime::ZERO,
                &all,
                cond,
                CmpOp::Eq,
                0,
                Some((target, writer)),
                BackgroundLoad::NONE,
            );
        }
        let vals = m.memory.gather(&all, target);
        assert!(
            vals.iter().all(|&v| v == vals[0]),
            "nodes disagree: {vals:?}"
        );
        assert_eq!(vals[0], 9); // last in total order wins
        assert_eq!(m.caw_count(), 10);
    }

    #[test]
    fn emulated_tree_arrivals_grow_logarithmically() {
        let mut m = Mechanisms::new(MechanismImpl::emulated(NetworkKind::Myrinet), 64);
        let t = m
            .xfer_and_signal(
                SimTime::ZERO,
                NodeId(0),
                &NodeSet::All(64),
                320,
                BufferPlacement::MainMemory,
                None,
                None,
                BackgroundLoad::NONE,
                &mut rng(),
            )
            .unwrap();
        let first = t.arrivals[0].1;
        let last = t.all_arrived();
        assert!(last > first, "tree arrivals must be staggered");
        // Depth of a 4-ary tree over 64 destinations is 3.
        let per_hop = first - SimTime::ZERO;
        assert_eq!(last - SimTime::ZERO, per_hop * 3);
    }

    #[test]
    fn hardware_caw_is_orders_of_magnitude_faster_than_emulated() {
        let mut hw = Mechanisms::qsnet(1024);
        let mut sw = Mechanisms::new(MechanismImpl::emulated(NetworkKind::GigabitEthernet), 1024);
        let vh = hw.memory.alloc_var(0);
        let vs = sw.memory.alloc_var(0);
        let all = NodeSet::All(1024);
        let th = hw
            .compare_and_write(
                SimTime::ZERO,
                &all,
                vh,
                CmpOp::Ge,
                0,
                None,
                BackgroundLoad::NONE,
            )
            .complete;
        let ts = sw
            .compare_and_write(
                SimTime::ZERO,
                &all,
                vs,
                CmpOp::Ge,
                0,
                None,
                BackgroundLoad::NONE,
            )
            .complete;
        // QsNET ≈ 6 µs vs GigE ≈ 460 µs at 1024 nodes (Table 5).
        assert!(ts.as_nanos() > 50 * th.as_nanos());
    }

    #[test]
    fn network_load_stretches_transfers() {
        let mut m = Mechanisms::qsnet(64);
        let quiet = m
            .xfer_and_signal(
                SimTime::ZERO,
                NodeId(0),
                &NodeSet::All(64),
                1_000_000,
                BufferPlacement::MainMemory,
                None,
                None,
                BackgroundLoad::NONE,
                &mut rng(),
            )
            .unwrap()
            .all_arrived();
        let loaded = m
            .xfer_and_signal(
                SimTime::ZERO,
                NodeId(0),
                &NodeSet::All(64),
                1_000_000,
                BufferPlacement::MainMemory,
                None,
                None,
                BackgroundLoad::network_loaded(),
                &mut rng(),
            )
            .unwrap()
            .all_arrived();
        assert!(loaded.as_nanos() > 5 * quiet.as_nanos());
    }

    #[test]
    fn fanout_profile_matches_materialised_timing() {
        // Same inputs → XferFanout::arrival(rank) must equal the rank-th
        // entry of XferTiming::arrivals, on both implementations.
        for mut m in [
            Mechanisms::qsnet(64),
            Mechanisms::new(MechanismImpl::emulated(NetworkKind::Myrinet), 64),
        ] {
            let set = NodeSet::Range { start: 3, len: 40 };
            let now = SimTime::from_millis(2);
            let fan = m
                .xfer_fanout(
                    now,
                    NodeId(0),
                    &set,
                    4096,
                    BufferPlacement::MainMemory,
                    None,
                    None,
                    BackgroundLoad::NONE,
                    &mut rng(),
                )
                .unwrap();
            let timing = m
                .xfer_and_signal(
                    now,
                    NodeId(0),
                    &set,
                    4096,
                    BufferPlacement::MainMemory,
                    None,
                    None,
                    BackgroundLoad::NONE,
                    &mut rng(),
                )
                .unwrap();
            assert_eq!(fan.len, 40);
            assert_eq!(fan.source_complete, timing.source_complete);
            assert_eq!(fan.all_arrived(), timing.all_arrived());
            for (rank, &(n, at)) in timing.arrivals.iter().enumerate() {
                assert_eq!(set.get(rank as u32), n);
                assert_eq!(fan.arrival(rank as u32), at, "rank {rank}");
            }
            // The delivery schedule reproduces the same profile.
            let (base, sched) = fan.delivery_schedule();
            for rank in 0..fan.len {
                assert_eq!(sched.arrival(base, rank), fan.arrival(rank));
            }
        }
    }

    #[test]
    fn caw_drop_accounting_counts_lost_queries() {
        let mut m = Mechanisms::qsnet(8);
        m.fault.caw_drop_prob = 1.0;
        assert!(!m.fault.is_quiet());
        let v = m.memory.alloc_var(0);
        let all = NodeSet::All(8);
        let mut r = rng();
        for _ in 0..5 {
            let res = m.compare_and_write_faulty(
                SimTime::ZERO,
                &all,
                v,
                CmpOp::Ge,
                0,
                Some((v, 9)),
                BackgroundLoad::NONE,
                &mut r,
            );
            assert_eq!(res, None, "certain drop loses the query");
        }
        // Every lost query was still *issued*: the counter reflects it,
        // and atomicity means no write half was applied anywhere.
        assert_eq!(m.caw_count(), 5);
        assert_eq!(m.memory.gather(&all, v), vec![0; 8]);
    }

    #[test]
    fn caw_retry_path_converges_under_partial_drops() {
        // p = 0.5: the initiator re-polls until a query gets through; the
        // survivor must observe exactly one applied write and a caw_count
        // equal to drops + the successful issue.
        let mut m = Mechanisms::qsnet(4);
        m.fault.caw_drop_prob = 0.5;
        let v = m.memory.alloc_var(0);
        let all = NodeSet::All(4);
        let mut r = rng();
        let mut polls = 0u64;
        let result = loop {
            polls += 1;
            assert!(polls < 1_000, "retry loop must converge");
            if let Some(res) = m.compare_and_write_faulty(
                SimTime::ZERO,
                &all,
                v,
                CmpOp::Eq,
                0,
                Some((v, 7)),
                BackgroundLoad::NONE,
                &mut r,
            ) {
                break res;
            }
        };
        assert!(result.satisfied);
        assert_eq!(m.memory.gather(&all, v), vec![7; 4]);
        assert_eq!(m.caw_count(), polls, "drops + the success are all issues");
    }

    #[test]
    fn quiet_plan_gating_is_exact() {
        // A quiet plan must consume no RNG: the next draw after a faulty
        // CAW equals the first draw of a fresh same-seed stream. A non-
        // quiet plan must consume exactly one draw per query.
        assert!(FaultPlan::default().is_quiet());
        assert!(!FaultPlan {
            caw_drop_prob: 0.1,
            ..FaultPlan::default()
        }
        .is_quiet());
        assert!(!FaultPlan {
            xfer_error_prob: 0.1,
            ..FaultPlan::default()
        }
        .is_quiet());
        let mut m = Mechanisms::qsnet(4);
        assert!(m.fault.is_quiet());
        assert!(!m.fault.caw_can_drop());
        let v = m.memory.alloc_var(0);
        let all = NodeSet::All(4);
        let mut used = rng();
        let res = m.compare_and_write_faulty(
            SimTime::ZERO,
            &all,
            v,
            CmpOp::Ge,
            0,
            None,
            BackgroundLoad::NONE,
            &mut used,
        );
        assert!(res.is_some(), "a quiet plan never drops");
        assert_eq!(
            used.uniform(),
            rng().uniform(),
            "quiet plan consumed RNG it must not touch"
        );
        // Flip the plan on: exactly one draw per query is consumed.
        m.fault.caw_drop_prob = 1e-9; // can drop, in principle
        assert!(m.fault.caw_can_drop() && !m.fault.is_quiet());
        let mut used = rng();
        let res = m.compare_and_write_faulty(
            SimTime::ZERO,
            &all,
            v,
            CmpOp::Ge,
            0,
            None,
            BackgroundLoad::NONE,
            &mut used,
        );
        assert!(res.is_some(), "p = 1e-9 effectively never fires");
        let mut fresh = rng();
        fresh.uniform(); // the one draw the gate spent
        assert_eq!(used.uniform(), fresh.uniform());
    }

    #[test]
    fn caw_audit_catches_torn_writes() {
        let mut m = Mechanisms::qsnet(4);
        m.memory.enable_caw_audit();
        let cond = m.memory.alloc_var(0);
        let target = m.memory.alloc_var(0);
        let set = NodeSet::Range { start: 1, len: 3 };
        m.compare_and_write(
            SimTime::ZERO,
            &set,
            cond,
            CmpOp::Eq,
            0,
            Some((target, 5)),
            BackgroundLoad::NONE,
        );
        let audits: Vec<_> = m.memory.caw_audits().collect();
        assert_eq!(audits.len(), 1);
        let (var, audit) = &audits[0];
        assert_eq!(*var, target);
        assert_eq!(audit.value, 5);
        // Intact: every node of the set reads the audited value.
        assert!(audit.set.iter().all(|n| m.memory.read(n, target) == 5));
        // A later per-node write retires the entry (nodes may diverge).
        m.memory.write(NodeId(2), target, 6);
        assert_eq!(m.memory.caw_audits().count(), 0);
        // A poke does not: the torn state stays audited — and detectable.
        m.compare_and_write(
            SimTime::ZERO,
            &set,
            cond,
            CmpOp::Eq,
            0,
            Some((target, 8)),
            BackgroundLoad::NONE,
        );
        m.memory.poke(NodeId(2), target, 0);
        let (_, audit) = m.memory.caw_audits().next().unwrap();
        assert!(
            !audit
                .set
                .iter()
                .all(|n| m.memory.read(n, target) == audit.value),
            "the tear is visible to the audit"
        );
    }

    #[test]
    fn tree_depth_is_correct() {
        // 4-ary tree: ranks 1..=4 at depth 1, 5..=20 at depth 2, …
        assert_eq!(tree_depth(1, 4), 1);
        assert_eq!(tree_depth(4, 4), 1);
        assert_eq!(tree_depth(5, 4), 2);
        assert_eq!(tree_depth(20, 4), 2);
        assert_eq!(tree_depth(21, 4), 3);
        // Binary tree.
        assert_eq!(tree_depth(2, 2), 1);
        assert_eq!(tree_depth(3, 2), 2);
        assert_eq!(tree_depth(6, 2), 2);
        assert_eq!(tree_depth(7, 2), 3);
    }
}
