//! Property-based tests of the mechanism semantics (§2.2).

use proptest::prelude::*;
use storm_mech::{CmpOp, MechanismImpl, Mechanisms, NodeId, NodeSet};
use storm_net::{BackgroundLoad, BufferPlacement, NetworkKind};
use storm_sim::{DeterministicRng, SimTime};

fn ops() -> impl Strategy<Value = CmpOp> {
    prop::sample::select(vec![CmpOp::Ge, CmpOp::Lt, CmpOp::Eq, CmpOp::Ne])
}

proptest! {
    /// COMPARE-AND-WRITE's condition is exactly the conjunction over the
    /// node set, for arbitrary per-node values and operators.
    #[test]
    fn caw_is_conjunction(
        values in prop::collection::vec(-100i64..100, 1..64),
        local in -100i64..100,
        op in ops(),
    ) {
        let n = values.len() as u32;
        let mut m = Mechanisms::qsnet(n);
        let var = m.memory.alloc_var(0);
        for (i, &v) in values.iter().enumerate() {
            m.memory.write(NodeId(i as u32), var, v);
        }
        let set = NodeSet::All(n);
        let r = m.compare_and_write(SimTime::ZERO, &set, var, op, local, None, BackgroundLoad::NONE);
        let expect = values.iter().all(|&v| op.eval(v, local));
        prop_assert_eq!(r.satisfied, expect);
    }

    /// The conditional write happens iff the condition held, applies to
    /// exactly the target set, and overwrites uniformly.
    #[test]
    fn caw_write_exactness(
        n in 2u32..64,
        start in 0u32..32,
        len in 1u32..32,
        cond_holds in any::<bool>(),
        new_value in -1000i64..1000,
    ) {
        let start = start % n;
        let len = len.min(n - start).max(1);
        let mut m = Mechanisms::qsnet(n);
        let cond = m.memory.alloc_var(if cond_holds { 1 } else { 0 });
        let target = m.memory.alloc_var(-7);
        let set = NodeSet::Range { start, len };
        m.compare_and_write(
            SimTime::ZERO, &set, cond, CmpOp::Eq, 1,
            Some((target, new_value)), BackgroundLoad::NONE,
        );
        for node in 0..n {
            let v = m.memory.read(NodeId(node), target);
            let in_set = node >= start && node < start + len;
            if in_set && cond_holds {
                prop_assert_eq!(v, new_value);
            } else {
                prop_assert_eq!(v, -7);
            }
        }
    }

    /// XFER-AND-SIGNAL: hardware arrivals are uniform; emulated-tree
    /// arrivals are non-decreasing in rank and the first hop is the
    /// earliest.
    #[test]
    fn xfer_arrival_structure(
        n in 2u32..256,
        bytes in 1u64..10_000_000,
        kind in prop::sample::select(vec![
            NetworkKind::QsNet, NetworkKind::Myrinet, NetworkKind::GigabitEthernet,
        ]),
    ) {
        let mut m = match kind {
            NetworkKind::QsNet => Mechanisms::qsnet(n),
            other => Mechanisms::new(MechanismImpl::emulated(other), n),
        };
        let mut rng = DeterministicRng::new(1);
        let t = m.xfer_and_signal(
            SimTime::from_millis(1), NodeId(0), &NodeSet::All(n), bytes,
            BufferPlacement::MainMemory, None, None, BackgroundLoad::NONE, &mut rng,
        ).unwrap();
        prop_assert_eq!(t.arrivals.len(), n as usize);
        prop_assert!(t.arrivals.iter().all(|&(_, a)| a > SimTime::from_millis(1)));
        match kind {
            NetworkKind::QsNet => {
                let first = t.arrivals[0].1;
                prop_assert!(t.arrivals.iter().all(|&(_, a)| a == first));
            }
            _ => {
                prop_assert!(t.arrivals.windows(2).all(|w| w[1].1 >= w[0].1));
                prop_assert_eq!(t.all_arrived(), t.arrivals.last().unwrap().1);
            }
        }
    }

    /// Atomicity: under an injected error nothing is observable; under
    /// success the remote event is visible exactly from the arrival.
    #[test]
    fn xfer_event_visibility(n in 2u32..64, bytes in 1u64..1_000_000, fail in any::<bool>()) {
        let mut m = Mechanisms::qsnet(n);
        m.fault.xfer_error_prob = if fail { 1.0 } else { 0.0 };
        let ev = m.memory.alloc_event();
        let mut rng = DeterministicRng::new(9);
        let r = m.xfer_and_signal(
            SimTime::ZERO, NodeId(0), &NodeSet::All(n), bytes,
            BufferPlacement::NicMemory, None, Some(ev), BackgroundLoad::NONE, &mut rng,
        );
        match r {
            Err(_) => {
                prop_assert!(fail);
                for i in 0..n {
                    prop_assert!(!m.test_event(NodeId(i), ev, SimTime::MAX));
                }
            }
            Ok(t) => {
                prop_assert!(!fail);
                let arrival = t.all_arrived();
                for i in 0..n {
                    prop_assert!(!m.test_event(NodeId(i), ev, SimTime::ZERO));
                    prop_assert!(m.test_event(NodeId(i), ev, arrival));
                }
            }
        }
    }

    /// Sequential consistency: any interleaving of CAW writes leaves every
    /// node with the same value — the last write in total order.
    #[test]
    fn caw_sequentially_consistent(writes in prop::collection::vec(-50i64..50, 1..30)) {
        let mut m = Mechanisms::qsnet(16);
        let cond = m.memory.alloc_var(0);
        let target = m.memory.alloc_var(i64::MIN);
        let all = NodeSet::All(16);
        for &w in &writes {
            m.compare_and_write(
                SimTime::ZERO, &all, cond, CmpOp::Eq, 0,
                Some((target, w)), BackgroundLoad::NONE,
            );
        }
        let vals = m.memory.gather(&all, target);
        prop_assert!(vals.iter().all(|&v| v == *writes.last().unwrap()));
    }
}
