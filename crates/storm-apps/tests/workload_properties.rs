//! Property-based tests of the workload cursor: the progress accounting
//! every scheduling experiment rests on.

use proptest::prelude::*;
use storm_apps::{AppSpec, Step, Workload};
use storm_sim::{DeterministicRng, SimSpan};

fn steps_strategy() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (1u64..500_000, 0u64..2_000_000).prop_map(|(us, bytes)| Step {
            compute: SimSpan::from_micros(us),
            comm_bytes: bytes,
        }),
        1..40,
    )
}

fn comm(bytes: u64) -> SimSpan {
    SimSpan::from_secs_f64(4e-6 + bytes as f64 / 319.0e6)
}

proptest! {
    /// Work is conserved: any sequence of grants consumes exactly the
    /// workload's total span, no more, no less — regardless of how the
    /// grants are sliced.
    #[test]
    fn grant_slicing_conserves_work(
        steps in steps_strategy(),
        grants in prop::collection::vec(1u64..200_000, 1..500),
    ) {
        let w = Workload::new(steps);
        let total = w.total_span(comm).unwrap();
        let mut cursor = w.cursor();
        let mut consumed = SimSpan::ZERO;
        for g in grants.iter().cycle() {
            if cursor.finished(&w) {
                break;
            }
            consumed += cursor.advance(&w, SimSpan::from_micros(*g), comm);
            // Never over-consume.
            prop_assert!(consumed <= total);
        }
        // The cycle above always terminates: each grant is ≥ 1 µs.
        prop_assert!(cursor.finished(&w));
        prop_assert_eq!(consumed, total);
        prop_assert_eq!(cursor.total_consumed(), total);
        // Further grants are no-ops.
        prop_assert_eq!(cursor.advance(&w, SimSpan::from_secs(1), comm), SimSpan::ZERO);
    }

    /// Two cursors fed identical grants stay identical — the lock-step
    /// property the per-NM replica scheme depends on.
    #[test]
    fn replicated_cursors_stay_in_lockstep(
        steps in steps_strategy(),
        grants in prop::collection::vec(1u64..100_000, 1..200),
    ) {
        let w = Workload::new(steps);
        let mut a = w.cursor();
        let mut b = w.cursor();
        for g in &grants {
            let ga = a.advance(&w, SimSpan::from_micros(*g), comm);
            let gb = b.advance(&w, SimSpan::from_micros(*g), comm);
            prop_assert_eq!(ga, gb);
            prop_assert_eq!(a, b);
        }
    }

    /// Endless workloads accept any grant fully and never finish.
    #[test]
    fn endless_consumes_everything(grants in prop::collection::vec(1u64..1_000_000, 1..100)) {
        let w = Workload::endless(vec![Step {
            compute: SimSpan::from_micros(700),
            comm_bytes: 123,
        }]);
        let mut c = w.cursor();
        for g in &grants {
            let used = c.advance(&w, SimSpan::from_micros(*g), comm);
            prop_assert_eq!(used, SimSpan::from_micros(*g));
            prop_assert!(!c.finished(&w));
        }
    }

    /// Workload generation is a pure function of (spec, shape, seed).
    #[test]
    fn generation_is_pure(
        nodes in 1u32..128,
        ranks_per_node in 1u32..4,
        seed in 0u64..1000,
    ) {
        let ranks = nodes * ranks_per_node;
        for app in [
            AppSpec::sweep3d_default(),
            AppSpec::synthetic_default(),
            AppSpec::do_nothing_mb(4),
        ] {
            let a = app.workload(nodes, ranks, &mut DeterministicRng::new(seed));
            let b = app.workload(nodes, ranks, &mut DeterministicRng::new(seed));
            prop_assert_eq!(a.steps(), b.steps());
            prop_assert_eq!(a.is_endless(), b.is_endless());
        }
    }

    /// Synthetic workloads total exactly their specified compute time for
    /// any duration.
    #[test]
    fn synthetic_total_is_exact(ms in 1u64..100_000) {
        let app = AppSpec::Synthetic { compute: SimSpan::from_millis(ms) };
        let w = app.workload(8, 16, &mut DeterministicRng::new(0));
        prop_assert_eq!(
            w.total_span(|_| SimSpan::ZERO).unwrap(),
            SimSpan::from_millis(ms)
        );
    }
}
