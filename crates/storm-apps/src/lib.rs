//! # storm-apps — application workload models
//!
//! The paper's experiments use a handful of applications:
//!
//! * a **do-nothing** program padded to 4/8/12 MB with a static array, used
//!   to measure job-launch overhead (§3.1, following Brightwell et al.'s
//!   Cplant methodology);
//! * **SWEEP3D**, the ASCI wavefront particle-transport kernel — a
//!   bulk-synchronous sequence of compute + neighbour-exchange iterations,
//!   ≈ 49 s on 32 nodes / 64 PEs (§3.2);
//! * a **synthetic CPU-intensive** job;
//! * a **spin-loop CPU hog** and a **pairwise network-bandwidth hog** used
//!   to load the system for the Fig. 3 experiments.
//!
//! A job's computational structure is a [`Workload`] — an ordered list of
//! BSP-style [`Step`]s (compute span + exchanged bytes); the gang scheduler
//! advances a [`WorkloadCursor`] through it during the job's active
//! timeslices. [`AppSpec`] names which model (and binary size) a submitted
//! job uses; [`AppSpec::workload`] instantiates the model for a concrete
//! cluster shape.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod spec;
pub mod stream;
pub mod workload;

pub use spec::AppSpec;
pub use stream::{stream_metrics, CompletedJob, StreamConfig, StreamJob, StreamMetrics};
pub use workload::{Step, Workload, WorkloadCursor};
