//! Bulk-synchronous workload representation and the cursor the scheduler
//! advances through it.
//!
//! SWEEP3D — the paper's main application — is a wavefront code: each
//! iteration computes on a local grid block and exchanges ghost cells with
//! neighbours; all ranks move through iterations essentially in lock-step
//! (which is precisely why it needs *gang* scheduling: a rank whose peer is
//! descheduled stalls at the exchange). We model a job's execution as a
//! sequence of [`Step`]s whose durations already account for the
//! max-over-ranks skew; under gang scheduling all ranks of a job advance
//! through this shared timeline while their timeslot is active.

use storm_sim::SimSpan;

/// One BSP iteration: compute, then exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Per-iteration computation time (max over ranks, including load
    /// imbalance).
    pub compute: SimSpan,
    /// Bytes exchanged with neighbours at the end of the iteration (per
    /// rank; determines the communication span via the network model).
    pub comm_bytes: u64,
}

/// A job's complete computational structure.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    steps: Vec<Step>,
    /// True for hog programs that never terminate on their own (spin loop,
    /// network loader): the cursor cycles through `steps` forever.
    endless: bool,
}

impl Workload {
    /// A terminating workload from explicit steps.
    pub fn new(steps: Vec<Step>) -> Self {
        Workload {
            steps,
            endless: false,
        }
    }

    /// The empty workload (a do-nothing program: exits immediately).
    pub fn empty() -> Self {
        Workload::default()
    }

    /// An endless workload (spin loop / network loader): cycles through
    /// `steps` until the job is killed.
    pub fn endless(steps: Vec<Step>) -> Self {
        assert!(
            !steps.is_empty(),
            "an endless workload needs at least one step"
        );
        Workload {
            steps,
            endless: true,
        }
    }

    /// The steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Whether this workload never terminates.
    pub fn is_endless(&self) -> bool {
        self.endless
    }

    /// Total busy time per rank assuming a given span per communication
    /// step (computed by the caller from the network model). `None` for
    /// endless workloads.
    pub fn total_span(&self, comm_span_of: impl Fn(u64) -> SimSpan) -> Option<SimSpan> {
        if self.endless {
            return None;
        }
        Some(
            self.steps
                .iter()
                .map(|s| s.compute + comm_span_of(s.comm_bytes))
                .sum(),
        )
    }

    /// Start a cursor at the beginning.
    pub fn cursor(&self) -> WorkloadCursor {
        WorkloadCursor {
            step: 0,
            consumed_in_step: SimSpan::ZERO,
            total_consumed: SimSpan::ZERO,
        }
    }
}

/// Progress through a [`Workload`]. The scheduler calls
/// [`WorkloadCursor::advance`] with the CPU time a job's ranks received; the
/// cursor reports how much was actually used (less when the job finishes
/// mid-grant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadCursor {
    step: usize,
    consumed_in_step: SimSpan,
    total_consumed: SimSpan,
}

impl WorkloadCursor {
    /// Advance by up to `grant` of scheduled time; `comm_span_of` converts a
    /// step's exchanged bytes into a span (network-model dependent).
    /// Returns the time actually consumed (`< grant` only if the workload
    /// completed).
    pub fn advance(
        &mut self,
        workload: &Workload,
        mut grant: SimSpan,
        comm_span_of: impl Fn(u64) -> SimSpan,
    ) -> SimSpan {
        let mut used = SimSpan::ZERO;
        loop {
            if grant.is_zero() {
                break;
            }
            let nsteps = workload.steps.len();
            if nsteps == 0 {
                break; // empty workload: done immediately
            }
            let idx = if workload.endless {
                self.step % nsteps
            } else if self.step >= nsteps {
                break; // finished
            } else {
                self.step
            };
            let s = &workload.steps[idx];
            let step_total = s.compute + comm_span_of(s.comm_bytes);
            let remaining = step_total.saturating_sub(self.consumed_in_step);
            if grant >= remaining {
                grant -= remaining;
                used += remaining;
                self.total_consumed += remaining;
                self.step += 1;
                self.consumed_in_step = SimSpan::ZERO;
            } else {
                self.consumed_in_step += grant;
                self.total_consumed += grant;
                used += grant;
                grant = SimSpan::ZERO;
            }
        }
        used
    }

    /// Whether the workload has been fully consumed (never true for endless
    /// workloads).
    pub fn finished(&self, workload: &Workload) -> bool {
        !workload.endless && self.step >= workload.steps.len()
    }

    /// Completed full steps so far.
    pub fn steps_done(&self) -> usize {
        self.step
    }

    /// Total scheduled time consumed so far.
    pub fn total_consumed(&self) -> SimSpan {
        self.total_consumed
    }

    /// Time consumed inside the current (partial) step.
    pub fn consumed_in_step(&self) -> SimSpan {
        self.consumed_in_step
    }

    /// Rebuild a cursor from checkpointed parts (`steps_done`,
    /// `consumed_in_step`, `total_consumed`). The cursor resumes mid-step
    /// exactly where the exported one stood.
    pub fn from_parts(step: usize, consumed_in_step: SimSpan, total_consumed: SimSpan) -> Self {
        WorkloadCursor {
            step,
            consumed_in_step,
            total_consumed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_comm(_: u64) -> SimSpan {
        SimSpan::ZERO
    }

    fn steps(ms: &[u64]) -> Vec<Step> {
        ms.iter()
            .map(|&m| Step {
                compute: SimSpan::from_millis(m),
                comm_bytes: 0,
            })
            .collect()
    }

    #[test]
    fn empty_workload_finishes_immediately() {
        let w = Workload::empty();
        let mut c = w.cursor();
        assert!(c.finished(&w));
        assert_eq!(c.advance(&w, SimSpan::from_secs(1), no_comm), SimSpan::ZERO);
        assert_eq!(w.total_span(no_comm), Some(SimSpan::ZERO));
    }

    #[test]
    fn cursor_consumes_across_steps() {
        let w = Workload::new(steps(&[10, 10, 10]));
        let mut c = w.cursor();
        // A 25 ms grant finishes two steps and half of the third.
        let used = c.advance(&w, SimSpan::from_millis(25), no_comm);
        assert_eq!(used, SimSpan::from_millis(25));
        assert_eq!(c.steps_done(), 2);
        assert!(!c.finished(&w));
        // 5 ms more completes it; a surplus grant is only partially used.
        let used = c.advance(&w, SimSpan::from_millis(50), no_comm);
        assert_eq!(used, SimSpan::from_millis(5));
        assert!(c.finished(&w));
        assert_eq!(c.total_consumed(), SimSpan::from_millis(30));
        // Further grants are no-ops.
        assert_eq!(c.advance(&w, SimSpan::from_secs(1), no_comm), SimSpan::ZERO);
    }

    #[test]
    fn total_span_includes_communication() {
        let w = Workload::new(vec![
            Step {
                compute: SimSpan::from_millis(10),
                comm_bytes: 1_000_000,
            };
            4
        ]);
        // 1 MB at 100 MB/s = 10 ms comm per step.
        let comm = |b: u64| SimSpan::for_bytes(b, 100.0e6);
        assert_eq!(w.total_span(comm), Some(SimSpan::from_millis(80)));
        // The cursor agrees with total_span.
        let mut c = w.cursor();
        let mut total = SimSpan::ZERO;
        while !c.finished(&w) {
            total += c.advance(&w, SimSpan::from_millis(7), comm);
        }
        assert_eq!(total, SimSpan::from_millis(80));
    }

    #[test]
    fn endless_workload_never_finishes() {
        let w = Workload::endless(steps(&[5]));
        assert!(w.is_endless());
        assert_eq!(w.total_span(no_comm), None);
        let mut c = w.cursor();
        let used = c.advance(&w, SimSpan::from_secs(10), no_comm);
        assert_eq!(used, SimSpan::from_secs(10));
        assert!(!c.finished(&w));
        assert_eq!(c.steps_done(), 2000);
    }

    #[test]
    fn many_small_grants_equal_one_big_grant() {
        let w = Workload::new(steps(&[7, 13, 29, 3]));
        let total = w.total_span(no_comm).unwrap();
        let mut c1 = w.cursor();
        c1.advance(&w, total, no_comm);
        assert!(c1.finished(&w));
        let mut c2 = w.cursor();
        let mut granted = SimSpan::ZERO;
        while !c2.finished(&w) {
            c2.advance(&w, SimSpan::from_micros(900), no_comm);
            granted += SimSpan::from_micros(900);
            assert!(granted < total + SimSpan::from_millis(1), "cursor stuck");
        }
        assert_eq!(c2.total_consumed(), total);
    }

    #[test]
    #[should_panic(expected = "endless workload needs at least one step")]
    fn endless_needs_steps() {
        Workload::endless(vec![]);
    }
}
