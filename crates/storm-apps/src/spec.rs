//! Application specifications and their calibrated workload generators.

use crate::workload::{Step, Workload};
use storm_sim::{DeterministicRng, SimSpan};

/// Which application a job runs, with its model parameters.
///
/// Each variant corresponds to a program the paper uses; `binary_bytes`
/// (what the launch protocol must transfer) is a separate [`AppSpec`]
/// accessor since every variant has a binary image.
#[derive(Debug, Clone, PartialEq)]
pub enum AppSpec {
    /// The §3.1 measurement program: a static array pads the binary to
    /// `binary_bytes`; the program terminates immediately.
    DoNothing {
        /// Binary image size (4, 8 or 12 MB in the paper).
        binary_bytes: u64,
    },
    /// SWEEP3D, the ASCI wavefront particle-transport kernel (§3.2).
    Sweep3d {
        /// Iteration count; with the default per-iteration cost this gives
        /// the paper's ≈ 49 s runtime on 32 nodes / 64 PEs.
        iterations: u32,
        /// Per-iteration per-rank compute time before skew.
        compute_per_iter: SimSpan,
        /// Ghost-cell bytes exchanged with neighbours per iteration.
        comm_bytes_per_iter: u64,
    },
    /// The synthetic CPU-intensive job of §3.2: pure computation, no
    /// communication.
    Synthetic {
        /// Total single-rank compute time.
        compute: SimSpan,
    },
    /// The Fig. 3 CPU hog: a tight spin loop that never exits.
    SpinLoop,
    /// The Fig. 3 network hog: pairs of processes exchanging point-to-point
    /// messages forever.
    NetLoad {
        /// Message size per exchange.
        msg_bytes: u64,
    },
}

impl AppSpec {
    /// A do-nothing program of `mb` *decimal* megabytes (the paper's 4, 8,
    /// 12 MB binaries).
    pub fn do_nothing_mb(mb: u64) -> Self {
        AppSpec::DoNothing {
            binary_bytes: mb * 1_000_000,
        }
    }

    /// SWEEP3D with the calibration used throughout the reproduction:
    /// 240 iterations × ≈ 200 ms ≈ 49 s on 32 nodes / 64 PEs (Fig. 4's
    /// annotated point), exchanging 2 MB of ghost cells per iteration.
    pub fn sweep3d_default() -> Self {
        AppSpec::Sweep3d {
            iterations: 240,
            compute_per_iter: SimSpan::from_micros(192_000),
            comm_bytes_per_iter: 2_000_000,
        }
    }

    /// The synthetic computation calibrated to ≈ 60 s.
    pub fn synthetic_default() -> Self {
        AppSpec::Synthetic {
            compute: SimSpan::from_secs(60),
        }
    }

    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            AppSpec::DoNothing { .. } => "do-nothing",
            AppSpec::Sweep3d { .. } => "SWEEP3D",
            AppSpec::Synthetic { .. } => "synthetic",
            AppSpec::SpinLoop => "spin-loop",
            AppSpec::NetLoad { .. } => "net-load",
        }
    }

    /// Size of the binary image the launcher must distribute.
    pub fn binary_bytes(&self) -> u64 {
        match self {
            AppSpec::DoNothing { binary_bytes } => *binary_bytes,
            // Real program binaries: SWEEP3D is a small Fortran code; the
            // hogs are trivial C programs.
            AppSpec::Sweep3d { .. } => 4_000_000,
            AppSpec::Synthetic { .. } => 1_000_000,
            AppSpec::SpinLoop => 1_000_000,
            AppSpec::NetLoad { .. } => 1_000_000,
        }
    }

    /// Instantiate the workload for a job on `nodes` nodes, `ranks` total
    /// ranks. Per-step durations include a max-over-ranks skew drawn from
    /// `rng` (growing slowly with the rank count, as the expected maximum of
    /// i.i.d. per-rank noise does).
    pub fn workload(&self, nodes: u32, ranks: u32, rng: &mut DeterministicRng) -> Workload {
        match self {
            AppSpec::DoNothing { .. } => Workload::empty(),
            AppSpec::Sweep3d {
                iterations,
                compute_per_iter,
                comm_bytes_per_iter,
            } => {
                let skew = skew_factor(ranks);
                let steps = (0..*iterations)
                    .map(|_| {
                        // Small per-iteration jitter (±2%) around the
                        // skew-inflated mean: SWEEP3D is very regular.
                        let jitter = 1.0 + 0.02 * (rng.uniform() - 0.5);
                        Step {
                            compute: compute_per_iter.mul_f64(skew * jitter),
                            // Wavefront exchanges grow mildly with the
                            // process-grid perimeter.
                            comm_bytes: comm_scale(*comm_bytes_per_iter, nodes),
                        }
                    })
                    .collect();
                Workload::new(steps)
            }
            AppSpec::Synthetic { compute } => {
                // One long compute phase, chopped into 1 s steps so the
                // cursor has a natural granularity; embarrassingly parallel,
                // so no skew term.
                let step = SimSpan::from_secs(1);
                let full_steps = compute.as_nanos() / step.as_nanos();
                let rem = SimSpan::from_nanos(compute.as_nanos() % step.as_nanos());
                let mut steps: Vec<Step> = (0..full_steps)
                    .map(|_| Step {
                        compute: step,
                        comm_bytes: 0,
                    })
                    .collect();
                if !rem.is_zero() {
                    steps.push(Step {
                        compute: rem,
                        comm_bytes: 0,
                    });
                }
                Workload::new(steps)
            }
            AppSpec::SpinLoop => Workload::endless(vec![Step {
                compute: SimSpan::from_millis(1),
                comm_bytes: 0,
            }]),
            AppSpec::NetLoad { msg_bytes } => Workload::endless(vec![Step {
                compute: SimSpan::from_micros(5),
                comm_bytes: *msg_bytes,
            }]),
        }
    }
}

/// Expected max-over-ranks inflation of a per-iteration time: the maximum of
/// n i.i.d. noise terms grows ~ sqrt(ln n); calibrated so 64 ranks inflate
/// by ≈ 2%.
fn skew_factor(ranks: u32) -> f64 {
    let n = f64::from(ranks.max(1));
    1.0 + 0.01 * n.ln().max(0.0).sqrt()
}

/// Ghost-cell exchange volume grows mildly with node count (wavefront
/// perimeter effects): +10% per doubling beyond one node.
fn comm_scale(base: u64, nodes: u32) -> u64 {
    let n = f64::from(nodes.max(1));
    (base as f64 * (1.0 + 0.10 * n.log2().max(0.0))) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DeterministicRng {
        DeterministicRng::new(5)
    }

    #[test]
    fn do_nothing_sizes_match_paper() {
        for mb in [4u64, 8, 12] {
            let app = AppSpec::do_nothing_mb(mb);
            assert_eq!(app.binary_bytes(), mb * 1_000_000);
            assert!(app.workload(64, 256, &mut rng()).steps().is_empty());
        }
    }

    #[test]
    fn sweep3d_runtime_calibration() {
        // On 32 nodes / 64 PEs the paper reports ≈ 49 s (Fig. 4 annotation).
        let app = AppSpec::sweep3d_default();
        let w = app.workload(32, 64, &mut rng());
        // Comm at ~319 MB/s link bandwidth plus 4 µs latency.
        let comm = |b: u64| SimSpan::from_secs_f64(4e-6 + b as f64 / 319.0e6);
        let total = w.total_span(comm).unwrap().as_secs_f64();
        assert!((total - 49.0).abs() < 2.0, "SWEEP3D runtime {total:.1} s");
    }

    #[test]
    fn sweep3d_weak_scaling_is_flat() {
        // Fig. 5: runtime barely changes from 1 to 64 nodes.
        let app = AppSpec::sweep3d_default();
        let comm = |b: u64| SimSpan::from_secs_f64(4e-6 + b as f64 / 319.0e6);
        let t1 = app
            .workload(1, 2, &mut rng())
            .total_span(comm)
            .unwrap()
            .as_secs_f64();
        let t64 = app
            .workload(64, 128, &mut rng())
            .total_span(comm)
            .unwrap()
            .as_secs_f64();
        assert!(t64 > t1, "more nodes add (slight) skew and comm");
        assert!(
            t64 / t1 < 1.10,
            "weak scaling within 10%: {t1:.1} → {t64:.1}"
        );
    }

    #[test]
    fn synthetic_total_matches_spec() {
        let app = AppSpec::Synthetic {
            compute: SimSpan::from_secs_f64(12.5),
        };
        let w = app.workload(8, 16, &mut rng());
        assert_eq!(
            w.total_span(|_| SimSpan::ZERO).unwrap(),
            SimSpan::from_secs_f64(12.5)
        );
        assert_eq!(w.steps().len(), 13); // 12 × 1 s + 0.5 s
    }

    #[test]
    fn hogs_are_endless() {
        assert!(AppSpec::SpinLoop.workload(4, 8, &mut rng()).is_endless());
        assert!(AppSpec::NetLoad { msg_bytes: 65536 }
            .workload(4, 8, &mut rng())
            .is_endless());
    }

    #[test]
    fn skew_grows_slowly() {
        assert!(skew_factor(1) >= 1.0);
        assert!(skew_factor(64) > skew_factor(2));
        assert!(skew_factor(4096) < 1.04);
    }

    #[test]
    fn workload_generation_is_deterministic() {
        let app = AppSpec::sweep3d_default();
        let w1 = app.workload(32, 64, &mut DeterministicRng::new(9));
        let w2 = app.workload(32, 64, &mut DeterministicRng::new(9));
        assert_eq!(w1.steps(), w2.steps());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(AppSpec::do_nothing_mb(12).name(), "do-nothing");
        assert_eq!(AppSpec::sweep3d_default().name(), "SWEEP3D");
        assert_eq!(AppSpec::synthetic_default().name(), "synthetic");
        assert_eq!(AppSpec::SpinLoop.name(), "spin-loop");
        assert_eq!(AppSpec::NetLoad { msg_bytes: 1 }.name(), "net-load");
    }
}
