//! Synthetic job streams.
//!
//! §5.2 argues STORM's value as a testbed for comparing scheduling
//! algorithms "on a common set of workloads". This module generates such
//! workloads: Poisson arrivals, log-uniform power-of-two job widths and
//! log-normal runtimes — the stylised facts of the parallel-workload
//! archives (Feitelson et al.) that the gang-scheduling literature of the
//! period used.

use crate::spec::AppSpec;
use crate::workload::Workload;
use storm_sim::{DeterministicRng, SimSpan, SimTime};

/// Parameters of a synthetic job stream.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Number of jobs.
    pub jobs: usize,
    /// Mean inter-arrival time (Poisson process).
    pub mean_interarrival: SimSpan,
    /// Smallest job width in ranks (inclusive, power of two).
    pub min_ranks: u32,
    /// Largest job width in ranks (inclusive, power of two).
    pub max_ranks: u32,
    /// Median job runtime.
    pub median_runtime: SimSpan,
    /// Log-normal sigma of the runtime distribution (≈1.0–2.5 in traces;
    /// higher → heavier tail).
    pub runtime_sigma: f64,
    /// How far user estimates overshoot true runtimes (traces show 1–10×;
    /// estimates are what backfilling schedules against).
    pub estimate_factor: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            jobs: 50,
            mean_interarrival: SimSpan::from_secs(2),
            min_ranks: 4,
            max_ranks: 256,
            median_runtime: SimSpan::from_secs(8),
            runtime_sigma: 1.0,
            estimate_factor: 2.0,
        }
    }
}

/// One generated arrival.
#[derive(Debug, Clone)]
pub struct StreamJob {
    /// Arrival instant.
    pub arrival: SimTime,
    /// Width in ranks.
    pub ranks: u32,
    /// The application model (synthetic compute of the drawn runtime).
    pub app: AppSpec,
    /// The user's (inflated) runtime estimate.
    pub estimate: SimSpan,
    /// The true runtime drawn for this job.
    pub runtime: SimSpan,
}

impl StreamConfig {
    /// Validate the parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.jobs == 0 {
            return Err("stream needs at least one job".into());
        }
        if !self.min_ranks.is_power_of_two() || !self.max_ranks.is_power_of_two() {
            return Err("rank bounds must be powers of two".into());
        }
        if self.min_ranks > self.max_ranks {
            return Err("min_ranks > max_ranks".into());
        }
        if self.mean_interarrival.is_zero() || self.median_runtime.is_zero() {
            return Err("times must be positive".into());
        }
        if self.estimate_factor < 1.0 {
            return Err("estimates cannot undershoot (factor >= 1)".into());
        }
        Ok(())
    }

    /// Generate the stream deterministically from `rng`.
    pub fn generate(&self, rng: &mut DeterministicRng) -> Vec<StreamJob> {
        self.validate().expect("invalid stream config");
        let mut arrivals = Vec::with_capacity(self.jobs);
        let mut t = SimTime::ZERO;
        let widths: Vec<u32> = {
            let mut w = Vec::new();
            let mut x = self.min_ranks;
            while x <= self.max_ranks {
                w.push(x);
                x *= 2;
            }
            w
        };
        for _ in 0..self.jobs {
            t += SimSpan::from_secs_f64(rng.exponential(self.mean_interarrival.as_secs_f64()));
            // Log-uniform width: each power of two equally likely (the
            // "favour small jobs" shape of real traces in log space).
            let ranks = widths[rng.below(widths.len() as u64) as usize];
            // Log-normal runtime around the median.
            let runtime = self
                .median_runtime
                .mul_f64(rng.lognormal_jitter(self.runtime_sigma));
            let estimate = runtime.mul_f64(1.0 + (self.estimate_factor - 1.0) * rng.uniform());
            arrivals.push(StreamJob {
                arrival: t,
                ranks,
                app: AppSpec::Synthetic { compute: runtime },
                estimate,
                runtime,
            });
        }
        arrivals
    }
}

/// Schedule-quality metrics over a completed stream.
#[derive(Debug, Clone, Default)]
pub struct StreamMetrics {
    /// Last completion instant.
    pub makespan: SimSpan,
    /// Mean wait (arrival → start).
    pub mean_wait: SimSpan,
    /// Mean *bounded slowdown*: `max(1, (wait + run) / max(run, 10 s))` —
    /// the standard metric of the job-scheduling literature.
    pub mean_bounded_slowdown: f64,
    /// Machine utilisation: Σ(ranks × runtime) / (PEs × makespan).
    pub utilization: f64,
}

/// One completed job's observables, as fed to [`stream_metrics`].
#[derive(Debug, Clone, Copy)]
pub struct CompletedJob {
    /// Arrival instant.
    pub arrival: SimTime,
    /// Start (all ranks running).
    pub started: SimTime,
    /// Completion.
    pub completed: SimTime,
    /// Width in ranks.
    pub ranks: u32,
    /// Pure computational demand per rank. Under timesharing a job's
    /// wall-clock residence exceeds its work, so utilisation must be
    /// computed from work, not wall time.
    pub work: SimSpan,
}

/// Compute stream metrics for `total_pes` processors.
pub fn stream_metrics(jobs: &[CompletedJob], total_pes: u32) -> StreamMetrics {
    assert!(!jobs.is_empty() && total_pes > 0);
    let bound = SimSpan::from_secs(10);
    let mut makespan = SimSpan::ZERO;
    let mut wait_total = SimSpan::ZERO;
    let mut slowdown_total = 0.0;
    let mut work = 0.0;
    for j in jobs {
        let wait = j.started.since(j.arrival);
        let run = j.completed.since(j.started);
        makespan = makespan.max(j.completed.since(SimTime::ZERO));
        wait_total += wait;
        let denom = run.max(bound).as_secs_f64();
        slowdown_total += ((wait + run).as_secs_f64() / denom).max(1.0);
        work += f64::from(j.ranks) * j.work.as_secs_f64();
    }
    let n = jobs.len() as f64;
    StreamMetrics {
        makespan,
        mean_wait: SimSpan::from_secs_f64(wait_total.as_secs_f64() / n),
        mean_bounded_slowdown: slowdown_total / n,
        utilization: work / (f64::from(total_pes) * makespan.as_secs_f64()),
    }
}

/// Convenience: a [`Workload`] totalling exactly `span` of compute.
pub fn compute_workload(span: SimSpan) -> Workload {
    AppSpec::Synthetic { compute: span }.workload(1, 1, &mut DeterministicRng::new(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DeterministicRng {
        DeterministicRng::new(42)
    }

    #[test]
    fn generates_requested_count_in_arrival_order() {
        let cfg = StreamConfig::default();
        let jobs = cfg.generate(&mut rng());
        assert_eq!(jobs.len(), 50);
        assert!(jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn widths_are_powers_of_two_in_range() {
        let cfg = StreamConfig {
            min_ranks: 8,
            max_ranks: 64,
            ..Default::default()
        };
        for j in cfg.generate(&mut rng()) {
            assert!(j.ranks.is_power_of_two());
            assert!((8..=64).contains(&j.ranks));
        }
    }

    #[test]
    fn estimates_never_undershoot() {
        let cfg = StreamConfig::default();
        for j in cfg.generate(&mut rng()) {
            assert!(
                j.estimate >= j.runtime,
                "{:?} < {:?}",
                j.estimate,
                j.runtime
            );
        }
    }

    #[test]
    fn interarrivals_have_roughly_the_right_mean() {
        let cfg = StreamConfig {
            jobs: 4000,
            ..Default::default()
        };
        let jobs = cfg.generate(&mut rng());
        let mean = jobs.last().unwrap().arrival.as_secs_f64() / 4000.0;
        assert!((mean - 2.0).abs() < 0.15, "mean interarrival {mean:.2}");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = StreamConfig::default();
        let a = cfg.generate(&mut DeterministicRng::new(7));
        let b = cfg.generate(&mut DeterministicRng::new(7));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.ranks, y.ranks);
            assert_eq!(x.runtime, y.runtime);
        }
    }

    #[test]
    fn validation_rejects_nonsense() {
        let ok = StreamConfig::default();
        assert!(ok.validate().is_ok());
        assert!(StreamConfig {
            jobs: 0,
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(StreamConfig {
            min_ranks: 3,
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(StreamConfig {
            min_ranks: 64,
            max_ranks: 8,
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(StreamConfig {
            estimate_factor: 0.5,
            ..ok
        }
        .validate()
        .is_err());
    }

    #[test]
    fn metrics_of_a_perfect_schedule() {
        // Two jobs, no waiting, half the machine each.
        let jobs = [
            CompletedJob {
                arrival: SimTime::ZERO,
                started: SimTime::ZERO,
                completed: SimTime::from_secs(100),
                ranks: 32,
                work: SimSpan::from_secs(100),
            },
            CompletedJob {
                arrival: SimTime::ZERO,
                started: SimTime::ZERO,
                completed: SimTime::from_secs(100),
                ranks: 32,
                work: SimSpan::from_secs(100),
            },
        ];
        let m = stream_metrics(&jobs, 64);
        assert_eq!(m.makespan, SimSpan::from_secs(100));
        assert_eq!(m.mean_wait, SimSpan::ZERO);
        assert!((m.mean_bounded_slowdown - 1.0).abs() < 1e-9);
        assert!((m.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn waiting_raises_slowdown_and_lowers_utilization() {
        let jobs = [CompletedJob {
            arrival: SimTime::ZERO,
            started: SimTime::from_secs(100),
            completed: SimTime::from_secs(200),
            ranks: 64,
            work: SimSpan::from_secs(100),
        }];
        let m = stream_metrics(&jobs, 64);
        assert_eq!(m.mean_wait, SimSpan::from_secs(100));
        assert!((m.mean_bounded_slowdown - 2.0).abs() < 1e-9);
        assert!((m.utilization - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bounded_slowdown_clamps_tiny_jobs() {
        // A 1 s job that waited 1 s: raw slowdown 2, but bounded by the
        // 10 s floor: (1+1)/10 = 0.2 → clamped to 1.
        let jobs = [CompletedJob {
            arrival: SimTime::ZERO,
            started: SimTime::from_secs(1),
            completed: SimTime::from_secs(2),
            ranks: 4,
            work: SimSpan::from_secs(1),
        }];
        let m = stream_metrics(&jobs, 64);
        assert!((m.mean_bounded_slowdown - 1.0).abs() < 1e-9);
    }

    #[test]
    fn compute_workload_totals() {
        let w = compute_workload(SimSpan::from_secs_f64(3.5));
        assert_eq!(
            w.total_span(|_| SimSpan::ZERO).unwrap(),
            SimSpan::from_secs_f64(3.5)
        );
    }
}
