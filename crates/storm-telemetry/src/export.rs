//! Chrome trace-event exporter.
//!
//! Produces a JSON document loadable in `chrome://tracing` or Perfetto:
//! every simulator `TraceRecord` becomes an instant event on its
//! component's track, and every [`JobSpan`] phase becomes a complete
//! (`"ph": "X"`) event on a per-job track, so a launch + gang-scheduling
//! run renders as a visual timeline of the §3.1 pipeline.

use std::fmt::Write as _;

use storm_sim::TraceRecord;

use crate::json::escape_into;
use crate::span::JobSpan;

/// Append a nanosecond sim-time instant as a trace-event `ts` value
/// (microseconds, with the sub-µs remainder kept as three decimals so no
/// precision is lost and output stays deterministic).
fn write_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// Build a Chrome trace-event JSON document from simulator trace records
/// and collected job spans. Components render as threads of process 0
/// ("daemons"); each job renders as a thread of process 1 ("jobs").
pub fn chrome_trace(records: &[TraceRecord], spans: &[JobSpan]) -> String {
    let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
    };
    sep(&mut out);
    out.push_str(
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \
         \"args\": {\"name\": \"STORM daemons\"}}",
    );
    sep(&mut out);
    out.push_str(
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \
         \"args\": {\"name\": \"jobs\"}}",
    );
    for r in records {
        sep(&mut out);
        out.push_str("{\"name\": \"");
        escape_into(&mut out, r.label);
        out.push_str("\", \"cat\": \"trace\", \"ph\": \"i\", \"s\": \"t\", \"ts\": ");
        write_us(&mut out, r.time.as_nanos());
        let _ = write!(out, ", \"pid\": 0, \"tid\": {}", r.component.index());
        out.push_str(", \"args\": {\"detail\": \"");
        escape_into(&mut out, &r.detail);
        out.push_str("\"}}");
    }
    for s in spans {
        for p in &s.phases {
            sep(&mut out);
            out.push_str("{\"name\": \"");
            escape_into(&mut out, p.name);
            out.push_str("\", \"cat\": \"job\", \"ph\": \"X\", \"ts\": ");
            write_us(&mut out, p.start.as_nanos());
            out.push_str(", \"dur\": ");
            write_us(&mut out, p.duration().as_nanos());
            let _ = write!(out, ", \"pid\": 1, \"tid\": {}", s.job);
            out.push_str(", \"args\": {\"job\": \"");
            escape_into(&mut out, &s.name);
            out.push_str("\", \"outcome\": \"");
            escape_into(&mut out, &s.outcome);
            let _ = write!(
                out,
                "\", \"ranks\": {}, \"attempts\": {}}}}}",
                s.ranks, s.attempts
            );
        }
        // Name the job's track so Perfetto shows "job3 dyn_prog" instead
        // of a bare thread id.
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {}",
            s.job
        );
        out.push_str(", \"args\": {\"name\": \"job");
        let _ = write!(out, "{} ", s.job);
        escape_into(&mut out, &s.name);
        out.push_str("\"}}");
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Phase;
    use storm_sim::{ComponentId, SimTime, Tracer};

    fn sample_inputs() -> (Vec<TraceRecord>, Vec<JobSpan>) {
        let mut t = Tracer::enabled();
        t.record(
            SimTime::from_micros(5),
            ComponentId::from_index(0),
            "mm.submit",
            || "job0 \"quoted\"".to_string(),
        );
        t.record(
            SimTime::from_millis(1),
            ComponentId::from_index(3),
            "nm.fork",
            || "rank 2".to_string(),
        );
        let span = JobSpan {
            job: 0,
            name: "sweep3d".to_string(),
            ranks: 64,
            outcome: "Completed".to_string(),
            attempts: 1,
            phases: vec![Phase {
                name: "execute",
                start: SimTime::from_micros(10),
                end: SimTime::from_millis(2),
            }],
        };
        (t.records().to_vec(), vec![span])
    }

    #[test]
    fn chrome_trace_is_valid_json_with_both_event_kinds() {
        let (records, spans) = sample_inputs();
        let doc = chrome_trace(&records, &spans);
        crate::json::validate_json(&doc).unwrap();
        assert!(doc.contains("\"ph\": \"i\""));
        assert!(doc.contains("\"ph\": \"X\""));
        assert!(doc.contains("\"ts\": 10.000, \"dur\": 1990.000"));
        assert!(doc.contains("job0 sweep3d"));
        assert_eq!(doc, chrome_trace(&records, &spans));
    }

    #[test]
    fn empty_inputs_still_produce_a_loadable_document() {
        let doc = chrome_trace(&[], &[]);
        crate::json::validate_json(&doc).unwrap();
        assert!(doc.contains("traceEvents"));
    }
}
