//! Minimal hand-rolled JSON support (the repo vendors no serde): a
//! string escaper used by the exporters and a recursive-descent validator
//! used by tests and the CI smoke bench to assert emitted artifacts
//! actually parse.

/// Append `s` to `out` with JSON string escaping (quotes, backslashes,
/// and control characters).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Check that `s` is a single well-formed JSON value (with nothing but
/// whitespace after it). Returns a byte offset plus message on failure.
pub fn validate_json(s: &str) -> Result<(), String> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    p.value(0)?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), String> {
        self.eat(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), String> {
        self.eat(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while let Some(c) = self.peek() {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(h) if h.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control char in string")),
                _ => self.i += 1,
            }
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| -> Result<(), String> {
            let start = p.i;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.i += 1;
            }
            if p.i == start {
                Err(p.err("expected digits"))
            } else {
                Ok(())
            }
        };
        digits(self)?;
        if self.peek() == Some(b'.') {
            self.i += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            digits(self)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_json() {
        for ok in [
            "null",
            "true",
            "-12.5e+3",
            "\"a\\n\\u00e9b\"",
            "[]",
            "{}",
            "[1, [2, {\"k\": \"v\"}], false]",
            "  {\"a\": {\"b\": [1, 2, 3]}}  ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} x",
            "\"unterminated",
            "nul",
            "01x",
            "\"bad \\q escape\"",
        ] {
            assert!(validate_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn escape_round_trips_through_validator() {
        let mut s = String::from("\"");
        escape_into(&mut s, "line\nquote\" back\\slash tab\t ctl\u{1} é");
        s.push('"');
        validate_json(&s).unwrap();
    }
}
