//! Minimal hand-rolled JSON support (the repo vendors no serde): a
//! string escaper used by the exporters, a recursive-descent validator
//! used by tests and the CI smoke bench to assert emitted artifacts
//! actually parse, and a [`Value`] model with a parser and writer for the
//! self-contained artifacts the workspace emits and replays (DST repro
//! files, cluster checkpoints). Numbers keep their source token so 64-bit
//! seeds round-trip without `f64` precision loss.

/// Append `s` to `out` with JSON string escaping (quotes, backslashes,
/// and control characters).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Check that `s` is a single well-formed JSON value (with nothing but
/// whitespace after it). Returns a byte offset plus message on failure.
pub fn validate_json(s: &str) -> Result<(), String> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    p.value(0)?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), String> {
        self.eat(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), String> {
        self.eat(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while let Some(c) = self.peek() {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(h) if h.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control char in string")),
                _ => self.i += 1,
            }
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| -> Result<(), String> {
            let start = p.i;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.i += 1;
            }
            if p.i == start {
                Err(p.err("expected digits"))
            } else {
                Ok(())
            }
        };
        digits(self)?;
        if self.peek() == Some(b'.') {
            self.i += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            digits(self)?;
        }
        Ok(())
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as its source token (integer-exact round-trips).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Required-member helpers for artifact decoding: error out with the
    /// member path instead of panicking on malformed input.
    pub fn req(&self, key: &str) -> Result<&Value, String> {
        self.get(key)
            .ok_or_else(|| format!("missing member {key:?}"))
    }

    /// Required `u64` member.
    pub fn req_u64(&self, key: &str) -> Result<u64, String> {
        self.req(key)?
            .as_u64()
            .ok_or_else(|| format!("member {key:?} is not a u64"))
    }

    /// Required string member.
    pub fn req_str(&self, key: &str) -> Result<&str, String> {
        self.req(key)?
            .as_str()
            .ok_or_else(|| format!("member {key:?} is not a string"))
    }
}

/// Parse a JSON document. Recursive descent over the full value grammar
/// (escapes decoded, whitespace tolerated); errors carry a byte offset.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    p_skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn p_skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn p_expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    p_skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {pos}", char::from(byte)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    p_skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("empty number at byte {start}"));
    }
    Ok(Value::Num(
        std::str::from_utf8(&bytes[start..*pos])
            .map_err(|_| "non-utf8 number".to_string())?
            .to_string(),
    ))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    p_expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (possibly multi-byte).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "non-utf8 string")?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    p_expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    p_skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        p_skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    p_expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    p_skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        p_skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        p_expect(bytes, pos, b':')?;
        members.push((key, parse_value(bytes, pos)?));
        p_skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// Escape and quote a string for JSON output.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// Render a [`Value`] as compact JSON (deterministic: member order is the
/// order held in the value).
pub fn render(value: &Value) -> String {
    let mut out = String::new();
    render_into(value, &mut out);
    out
}

fn render_into(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(tok) => out.push_str(tok),
        Value::Str(s) => out.push_str(&quote(s)),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Value::Obj(members) => {
            out.push('{');
            for (i, (k, v)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&quote(k));
                out.push(':');
                render_into(v, out);
            }
            out.push('}');
        }
    }
}

/// Convenience constructor for a JSON number from any displayable value.
pub fn num(n: impl std::fmt::Display) -> Value {
    Value::Num(n.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_a_document() {
        let doc = Value::Obj(vec![
            ("name".into(), Value::Str("two-node \"launch\"".into())),
            ("seed".into(), num(u64::MAX)),
            ("delta".into(), num(-42)),
            (
                "ties".into(),
                Value::Arr(vec![num(0), num(3), Value::Null, Value::Bool(true)]),
            ),
            ("empty".into(), Value::Obj(vec![])),
        ]);
        let text = render(&doc);
        validate_json(&text).unwrap();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        // 64-bit integers survive exactly (no f64 round-trip).
        assert_eq!(back.req_u64("seed").unwrap(), u64::MAX);
        assert_eq!(back.get("delta").unwrap().as_i64(), Some(-42));
        assert_eq!(back.req_str("name").unwrap(), "two-node \"launch\"");
    }

    #[test]
    fn value_parser_rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        let missing = Value::Obj(vec![]);
        assert!(missing.req_u64("absent").is_err());
    }

    #[test]
    fn accepts_well_formed_json() {
        for ok in [
            "null",
            "true",
            "-12.5e+3",
            "\"a\\n\\u00e9b\"",
            "[]",
            "{}",
            "[1, [2, {\"k\": \"v\"}], false]",
            "  {\"a\": {\"b\": [1, 2, 3]}}  ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} x",
            "\"unterminated",
            "nul",
            "01x",
            "\"bad \\q escape\"",
        ] {
            assert!(validate_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn escape_round_trips_through_validator() {
        let mut s = String::from("\"");
        escape_into(&mut s, "line\nquote\" back\\slash tab\t ctl\u{1} é");
        s.push('"');
        validate_json(&s).unwrap();
    }
}
