//! Deterministic telemetry for the STORM reproduction.
//!
//! The paper's evaluation (Figs. 2–12, Tables 4–7) is built from latency
//! breakdowns of the launch pipeline and per-timeslice scheduler behavior.
//! This crate provides the instrumentation layer that makes those numbers
//! first-class outputs of any run instead of hand-reconstructed bench
//! artifacts:
//!
//! - [`MetricsRegistry`] — counters, gauges, and fixed-bound power-of-2
//!   histograms keyed by static metric names plus label sets, with a
//!   deterministic [`MetricsSnapshot`] (JSON and pretty-text) exporter.
//! - [`SpanLog`] / [`JobSpan`] — per-job lifecycle spans (queue-wait,
//!   send pipeline, launch sync, fork, execute, collect) emitted as
//!   structured records at job completion.
//! - [`chrome_trace`] — a Chrome trace-event (`chrome://tracing` /
//!   Perfetto) JSON exporter fed from the simulator's `Tracer` records
//!   and the collected job spans.
//!
//! # Determinism rules
//!
//! Everything in this crate is plain integer bookkeeping over sim-time
//! values: no wall clock, no RNG, no hashing with randomized state
//! (`BTreeMap` keys give a total order). Recording happens synchronously
//! inside existing message handlers — no extra simulation events are
//! posted — so enabling telemetry never perturbs event counts, the trace,
//! or the RNG stream, and snapshots are byte-identical for the same seed
//! regardless of delivery encoding (grouped vs unicast).
//!
//! # Zero-cost contract
//!
//! Like the simulator's `Tracer`, the registry and span log are
//! flag-gated: when disabled (the default), every recording call is a
//! single branch on a `bool` and returns immediately — no allocation, no
//! map lookups, no formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod json;
pub mod registry;
pub mod span;

pub use export::chrome_trace;
pub use json::{validate_json, Value};
pub use registry::{Histogram, MetricKey, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use span::{spans_jsonl, JobSpan, Phase, SpanLog};

/// The per-run telemetry container threaded through the simulation world:
/// a metrics registry plus a job-span log, enabled or disabled together.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Counters, gauges, and histograms.
    pub metrics: MetricsRegistry,
    /// Per-job lifecycle spans, appended at job completion.
    pub spans: SpanLog,
}

impl Telemetry {
    /// A telemetry container with both the registry and the span log
    /// enabled (`on = true`) or fully disabled (`on = false`).
    pub fn new(on: bool) -> Self {
        Self {
            metrics: MetricsRegistry::new(on),
            spans: SpanLog::new(on),
        }
    }

    /// A disabled container: every recording call is a no-op.
    pub fn disabled() -> Self {
        Self::new(false)
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.metrics.is_enabled()
    }
}
