//! Deterministic metrics registry: counters, gauges, and fixed-bound
//! power-of-2 histograms keyed by static names plus label sets.
//!
//! All state lives in a `BTreeMap`, so iteration order — and therefore
//! every exported snapshot — is a pure function of what was recorded,
//! independent of insertion order hashing. Values are integers only
//! (histogram observations are `u64`, typically sim-time microseconds),
//! so snapshots are byte-identical across same-seed runs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use storm_sim::SimSpan;

use crate::json::escape_into;

/// Number of histogram buckets: bucket 0 holds the value 0, buckets
/// 1..=39 hold values with that many significant bits (`[2^(b-1), 2^b)`),
/// and the last bucket absorbs everything at or above `2^39` (≈ 9 minutes
/// when observations are microseconds).
pub const HISTOGRAM_BUCKETS: usize = 41;

/// A fixed-bound power-of-2 histogram over `u64` observations.
///
/// Observations are typically sim-time latencies in microseconds; the
/// bucket for a value is the number of significant bits in it, so bucket
/// boundaries are exact powers of two and bucketing is branch-free
/// integer math. Percentiles are reported as the upper bound of the
/// bucket containing the requested rank — at most 2× the true value,
/// which is plenty for regression tracking and is fully deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index for a value: 0 for 0, otherwise its bit width, clamped
/// into the final overflow bucket.
fn bucket_of(v: u64) -> usize {
    let bits = (64 - v.leading_zeros()) as usize;
    bits.min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of a bucket (`2^b - 1`); the overflow bucket
/// reports its nominal bound even though it is open-ended.
fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (display only; exported JSON stays integral).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The upper bound of the bucket containing the `p`-th percentile
    /// observation (`0.0..=100.0`). Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(b).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (b, n))
    }

    /// The full bucket array, for checkpointing.
    pub fn bucket_counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Rebuild a histogram from checkpointed parts. `min` is the value
    /// [`Histogram::min`] reported (0 for an empty histogram — the empty
    /// sentinel is reconstructed internally).
    pub fn from_parts(
        buckets: [u64; HISTOGRAM_BUCKETS],
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
    ) -> Self {
        Self {
            buckets,
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
        }
    }
}

/// A metric identity: a static name plus a (possibly empty) label set.
/// Labels are kept sorted so equal label sets compare equal regardless of
/// the order they were supplied in.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Static metric name, e.g. `"jobs.completed"`.
    pub name: &'static str,
    /// Sorted `(label, value)` pairs, e.g. `[("phase", "execute")]`.
    pub labels: Vec<(&'static str, String)>,
}

impl MetricKey {
    fn new(name: &'static str, mut labels: Vec<(&'static str, String)>) -> Self {
        labels.sort();
        Self { name, labels }
    }
}

/// One recorded metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter(u64),
    /// Last-write-wins instantaneous value.
    Gauge(i64),
    /// Power-of-2 distribution of `u64` observations (boxed: the bucket
    /// array dwarfs the scalar variants).
    Histogram(Box<Histogram>),
}

/// The flag-gated registry. When disabled every method is a single
/// branch; when enabled it is a `BTreeMap` upsert with no I/O and no
/// allocation beyond the key for first-seen metrics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    metrics: BTreeMap<MetricKey, MetricValue>,
}

impl MetricsRegistry {
    /// A registry that records (`on = true`) or ignores (`on = false`)
    /// every call.
    pub fn new(on: bool) -> Self {
        Self {
            enabled: on,
            metrics: BTreeMap::new(),
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Add `by` to the counter `name` (no labels).
    pub fn inc(&mut self, name: &'static str, by: u64) {
        self.inc_with(name, Vec::new(), by);
    }

    /// Add `by` to the counter `name` with the given labels.
    ///
    /// # Panics
    /// If `name` was previously recorded as a gauge or histogram.
    pub fn inc_with(&mut self, name: &'static str, labels: Vec<(&'static str, String)>, by: u64) {
        if !self.enabled {
            return;
        }
        let v = self
            .metrics
            .entry(MetricKey::new(name, labels))
            .or_insert(MetricValue::Counter(0));
        match v {
            MetricValue::Counter(c) => *c += by,
            _ => panic!("metric {name} is not a counter"),
        }
    }

    /// Set the gauge `name` (no labels) to `value`.
    ///
    /// # Panics
    /// If `name` was previously recorded as a counter or histogram.
    pub fn set_gauge(&mut self, name: &'static str, value: i64) {
        if !self.enabled {
            return;
        }
        let v = self
            .metrics
            .entry(MetricKey::new(name, Vec::new()))
            .or_insert(MetricValue::Gauge(0));
        match v {
            MetricValue::Gauge(g) => *g = value,
            _ => panic!("metric {name} is not a gauge"),
        }
    }

    /// Record one observation into the histogram `name` (no labels).
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.observe_with(name, Vec::new(), value);
    }

    /// Record one observation into the histogram `name` with labels.
    ///
    /// # Panics
    /// If `name` was previously recorded as a counter or gauge.
    pub fn observe_with(
        &mut self,
        name: &'static str,
        labels: Vec<(&'static str, String)>,
        value: u64,
    ) {
        if !self.enabled {
            return;
        }
        let v = self
            .metrics
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| MetricValue::Histogram(Box::default()));
        match v {
            MetricValue::Histogram(h) => h.observe(value),
            _ => panic!("metric {name} is not a histogram"),
        }
    }

    /// Record a sim-time span into the histogram `name`, in truncated
    /// microseconds.
    pub fn observe_span(&mut self, name: &'static str, span: SimSpan) {
        self.observe(name, span.as_nanos() / 1_000);
    }

    /// Record a sim-time span into the labeled histogram `name`, in
    /// truncated microseconds.
    pub fn observe_span_with(
        &mut self,
        name: &'static str,
        labels: Vec<(&'static str, String)>,
        span: SimSpan,
    ) {
        self.observe_with(name, labels, span.as_nanos() / 1_000);
    }

    /// Rebuild a registry from checkpointed entries (key order need not be
    /// sorted; the map re-establishes it). Static key names should come
    /// through `storm_sim::intern_label` when decoded from an artifact.
    pub fn import(on: bool, entries: Vec<(MetricKey, MetricValue)>) -> Self {
        Self {
            enabled: on,
            metrics: entries.into_iter().collect(),
        }
    }

    /// An ordered, immutable copy of the current registry contents.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self
                .metrics
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

/// An ordered point-in-time copy of the registry, with JSON and
/// pretty-text exporters and typed lookup helpers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    entries: Vec<(MetricKey, MetricValue)>,
}

impl MetricsSnapshot {
    /// All `(key, value)` entries in deterministic (key) order.
    pub fn entries(&self) -> &[(MetricKey, MetricValue)] {
        &self.entries
    }

    /// Number of metrics captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was recorded (or telemetry was disabled).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn find(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|(k, _)| k.name == name)
            .map(|(_, v)| v)
    }

    /// The first counter named `name`, if any.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.find(name)? {
            MetricValue::Counter(c) => Some(*c),
            _ => None,
        }
    }

    /// The first gauge named `name`, if any.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.find(name)? {
            MetricValue::Gauge(g) => Some(*g),
            _ => None,
        }
    }

    /// The first histogram named `name`, if any (ignores labels; use
    /// [`MetricsSnapshot::histogram_with`] for a specific label set).
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.find(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// The histogram with exactly this name and label set.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        self.entries.iter().find_map(|(k, v)| {
            let labels_match = k.labels.len() == labels.len()
                && k.labels
                    .iter()
                    .zip(labels)
                    .all(|((kn, kv), (ln, lv))| kn == ln && kv == lv);
            match v {
                MetricValue::Histogram(h) if k.name == name && labels_match => Some(&**h),
                _ => None,
            }
        })
    }

    /// Deterministic JSON: integer-only values, entries in key order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"metrics\": [\n");
        for (i, (k, v)) in self.entries.iter().enumerate() {
            out.push_str("    {\"name\": \"");
            escape_into(&mut out, k.name);
            out.push_str("\", \"labels\": {");
            for (j, (ln, lv)) in k.labels.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push('"');
                escape_into(&mut out, ln);
                out.push_str("\": \"");
                escape_into(&mut out, lv);
                out.push('"');
            }
            out.push_str("}, ");
            match v {
                MetricValue::Counter(c) => {
                    let _ = write!(out, "\"type\": \"counter\", \"value\": {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = write!(out, "\"type\": \"gauge\", \"value\": {g}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \
                         \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \
                         \"p99\": {}, \"buckets\": [",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                        h.percentile(50.0),
                        h.percentile(90.0),
                        h.percentile(99.0),
                    );
                    for (j, (b, n)) in h.nonzero_buckets().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "[{b}, {n}]");
                    }
                    out.push(']');
                }
            }
            out.push('}');
            if i + 1 < self.entries.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human-readable table, one metric per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.entries {
            let mut label = String::from(k.name);
            if !k.labels.is_empty() {
                label.push('{');
                for (j, (ln, lv)) in k.labels.iter().enumerate() {
                    if j > 0 {
                        label.push(',');
                    }
                    let _ = write!(label, "{ln}={lv}");
                }
                label.push('}');
            }
            match v {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "counter {label:<44} {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "gauge   {label:<44} {g}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "hist    {label:<44} count={} mean={:.1} p50<={} p90<={} p99<={} max={}",
                        h.count(),
                        h.mean(),
                        h.percentile(50.0),
                        h.percentile(90.0),
                        h.percentile(99.0),
                        h.max(),
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let mut r = MetricsRegistry::new(false);
        r.inc("a", 1);
        r.set_gauge("b", 2);
        r.observe("c", 3);
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let mut r = MetricsRegistry::new(true);
        r.inc("jobs.completed", 1);
        r.inc("jobs.completed", 2);
        r.set_gauge("nodes.alive", 64);
        r.set_gauge("nodes.alive", 63);
        r.observe("lat", 100);
        r.observe("lat", 1000);
        let s = r.snapshot();
        assert_eq!(s.counter("jobs.completed"), Some(3));
        assert_eq!(s.gauge("nodes.alive"), Some(63));
        let h = s.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 1100);
        assert_eq!(h.min(), 100);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(3), 7);
    }

    #[test]
    fn percentile_is_bucket_upper_bound() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 4, 100] {
            h.observe(v);
        }
        // rank(50%) = ceil(0.5 * 5) = 3 -> third observation (3), bucket
        // upper bound 3.
        assert_eq!(h.percentile(50.0), 3);
        // p100 lands in the bucket of 100 ([64,127]) but is clamped to max.
        assert_eq!(h.percentile(100.0), 100);
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(Histogram::default().percentile(50.0), 0);
    }

    #[test]
    fn labels_are_order_insensitive_and_sorted_in_snapshot() {
        let mut r = MetricsRegistry::new(true);
        r.inc_with("x", vec![("b", "2".to_string()), ("a", "1".to_string())], 1);
        r.inc_with("x", vec![("a", "1".to_string()), ("b", "2".to_string())], 1);
        let s = r.snapshot();
        assert_eq!(s.len(), 1);
        assert_eq!(s.entries()[0].0.labels[0].0, "a");
        assert_eq!(s.counter("x"), Some(2));
    }

    #[test]
    fn snapshot_json_is_deterministic_and_valid() {
        let build = || {
            let mut r = MetricsRegistry::new(true);
            r.observe("lat", 7);
            r.inc("n", 1);
            r.set_gauge("g", -5);
            r.inc_with("n2", vec![("k", "v".to_string())], 4);
            r.snapshot().to_json()
        };
        let a = build();
        assert_eq!(a, build());
        crate::json::validate_json(&a).unwrap();
        assert!(a.contains("\"type\": \"histogram\""));
        assert!(a.contains("\"value\": -5"));
    }
}
