//! Per-job lifecycle spans: one structured record per completed job,
//! carrying the phase boundaries of the §3.1 launch pipeline.
//!
//! Spans are appended in completion order, which is deterministic for a
//! given seed, so the JSONL export is byte-identical across same-seed
//! runs and across delivery encodings.

use std::fmt::Write as _;

use storm_sim::{SimSpan, SimTime};

use crate::json::escape_into;

/// One named phase of a job's lifecycle, as a half-open sim-time window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Phase name (`queue_wait`, `send_pipeline`, `launch_sync`, `fork`,
    /// `execute`, `collect`).
    pub name: &'static str,
    /// When the phase began.
    pub start: SimTime,
    /// When the phase ended.
    pub end: SimTime,
}

impl Phase {
    /// The phase duration.
    pub fn duration(&self) -> SimSpan {
        self.end.since(self.start)
    }
}

/// The lifecycle record emitted when a job reaches a terminal state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpan {
    /// Job id.
    pub job: u32,
    /// Application name from the job spec.
    pub name: String,
    /// Requested rank count.
    pub ranks: u32,
    /// Terminal state (`Completed`, `Failed`, `Killed`).
    pub outcome: String,
    /// Launch attempts (1 = succeeded first try).
    pub attempts: u32,
    /// Phase boundaries with both endpoints known, in pipeline order.
    pub phases: Vec<Phase>,
}

impl JobSpan {
    /// Total covered span (first phase start to last phase end), if any
    /// phases were recorded.
    pub fn total(&self) -> Option<SimSpan> {
        let first = self.phases.first()?;
        let last = self.phases.last()?;
        Some(last.end.since(first.start))
    }

    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "job{} {} ({} ranks) {} after {} attempt{}\n",
            self.job,
            self.name,
            self.ranks,
            self.outcome,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
        );
        for p in &self.phases {
            let _ = writeln!(
                out,
                "    {:<13} {:>12}   [{} -> {}]",
                p.name,
                format!("{}", p.duration()),
                p.start,
                p.end,
            );
        }
        out
    }

    /// One JSON object (no trailing newline); times in exact nanoseconds.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"job\": ");
        let _ = write!(out, "{}", self.job);
        out.push_str(", \"name\": \"");
        escape_into(&mut out, &self.name);
        out.push_str("\", \"ranks\": ");
        let _ = write!(out, "{}", self.ranks);
        out.push_str(", \"outcome\": \"");
        escape_into(&mut out, &self.outcome);
        let _ = write!(out, "\", \"attempts\": {}, \"phases\": [", self.attempts);
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"phase\": \"{}\", \"start_ns\": {}, \"end_ns\": {}, \"dur_ns\": {}}}",
                p.name,
                p.start.as_nanos(),
                p.end.as_nanos(),
                p.duration().as_nanos(),
            );
        }
        out.push_str("]}");
        out
    }
}

/// Render spans as JSON Lines: one [`JobSpan::to_json`] object per line.
pub fn spans_jsonl(spans: &[JobSpan]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&s.to_json());
        out.push('\n');
    }
    out
}

/// The flag-gated span collector; appended to by the machine manager at
/// job completion.
#[derive(Debug, Default)]
pub struct SpanLog {
    enabled: bool,
    spans: Vec<JobSpan>,
}

impl SpanLog {
    /// A log that records (`on = true`) or ignores (`on = false`) spans.
    pub fn new(on: bool) -> Self {
        Self {
            enabled: on,
            spans: Vec::new(),
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append a span; the closure is only evaluated when enabled.
    pub fn record(&mut self, make: impl FnOnce() -> JobSpan) {
        if self.enabled {
            self.spans.push(make());
        }
    }

    /// All collected spans in completion order.
    pub fn spans(&self) -> &[JobSpan] {
        &self.spans
    }

    /// Rebuild a log from checkpointed spans.
    pub fn import(on: bool, spans: Vec<JobSpan>) -> Self {
        Self { enabled: on, spans }
    }

    /// Number of collected spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobSpan {
        JobSpan {
            job: 7,
            name: "dyn_prog".to_string(),
            ranks: 256,
            outcome: "Completed".to_string(),
            attempts: 2,
            phases: vec![
                Phase {
                    name: "queue_wait",
                    start: SimTime::ZERO,
                    end: SimTime::from_micros(10),
                },
                Phase {
                    name: "execute",
                    start: SimTime::from_micros(10),
                    end: SimTime::from_millis(5),
                },
            ],
        }
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = SpanLog::new(false);
        log.record(|| panic!("closure must not run when disabled"));
        assert!(log.is_empty());
    }

    #[test]
    fn total_covers_first_to_last_phase() {
        assert_eq!(sample().total(), Some(SimSpan::from_millis(5)));
        let empty = JobSpan {
            phases: Vec::new(),
            ..sample()
        };
        assert_eq!(empty.total(), None);
    }

    #[test]
    fn jsonl_is_valid_and_deterministic() {
        let mut log = SpanLog::new(true);
        log.record(sample);
        log.record(sample);
        let out = spans_jsonl(log.spans());
        assert_eq!(out.lines().count(), 2);
        for line in out.lines() {
            crate::json::validate_json(line).unwrap();
        }
        assert!(out.contains("\"phase\": \"execute\""));
        assert_eq!(out, spans_jsonl(log.spans()));
    }
}
