//! Gang-scheduler quantum models (Table 8).
//!
//! Table 8 lists the *minimal feasible scheduling quantum* — the shortest
//! quantum at which application slowdown stays ≤ 2%:
//!
//! | system  | minimal feasible quantum | context |
//! |---|---|---|
//! | RMS     | 30 000 ms (1.8% slowdown on 15 nodes) |
//! | SCore-D | 100 ms (2% slowdown on 64 nodes) — must force the network quiescent and save/restore global state |
//! | STORM   | 2 ms on 64 nodes, no observable slowdown; hard floor ≈ 300 µs (NM control-message rate) |
//!
//! We model each scheduler's per-quantum coordination overhead; slowdown is
//! `overhead / quantum`, and a quantum below the scheduler's hard floor is
//! infeasible outright.

use storm_sim::SimSpan;

/// A gang scheduler's coordination-cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerModel {
    /// Quadrics RMS: kernel-mediated global context switch; ≈ 540 ms of
    /// per-quantum overhead (1.8% at 30 s).
    Rms,
    /// SCore-D: forces the Myrinet network into a quiescent state and
    /// saves/restores global communication state with PM assistance — ≈ 2 ms
    /// per switch (2% at 100 ms).
    ScoreD,
    /// STORM: a single hardware multicast enacts the switch; per-switch
    /// application cost ≈ 5 µs, NM strobe-processing floor ≈ 280 µs.
    Storm,
}

impl SchedulerModel {
    /// All three, Table 8 order.
    pub const ALL: [SchedulerModel; 3] = [
        SchedulerModel::Rms,
        SchedulerModel::ScoreD,
        SchedulerModel::Storm,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerModel::Rms => "RMS",
            SchedulerModel::ScoreD => "SCore-D",
            SchedulerModel::Storm => "STORM",
        }
    }

    /// Per-quantum coordination overhead visible to applications.
    pub fn switch_overhead(&self) -> SimSpan {
        match self {
            SchedulerModel::Rms => SimSpan::from_millis(540),
            SchedulerModel::ScoreD => SimSpan::from_millis(2),
            SchedulerModel::Storm => SimSpan::from_micros(5),
        }
    }

    /// Hard floor below which the scheduler cannot operate at all
    /// (regardless of acceptable slowdown).
    pub fn quantum_floor(&self) -> SimSpan {
        match self {
            // RMS/SCore-D floors are their own switch costs (they cannot
            // switch faster than the switch takes).
            SchedulerModel::Rms => SimSpan::from_millis(540),
            SchedulerModel::ScoreD => SimSpan::from_millis(2),
            // STORM's floor is the NM control-message processing rate
            // (§3.2.1: ≈ 300 µs).
            SchedulerModel::Storm => SimSpan::from_micros(280),
        }
    }

    /// The node count Table 8 cites for the system's measurement.
    pub fn reference_nodes(&self) -> u32 {
        match self {
            SchedulerModel::Rms => 15,
            SchedulerModel::ScoreD => 64,
            SchedulerModel::Storm => 64,
        }
    }
}

/// Application slowdown fraction for a given quantum (`None` when the
/// quantum is below the scheduler's hard floor).
pub fn slowdown(model: SchedulerModel, quantum: SimSpan) -> Option<f64> {
    if quantum < model.quantum_floor() {
        return None;
    }
    Some(model.switch_overhead().as_secs_f64() / quantum.as_secs_f64())
}

/// The minimal feasible quantum: the shortest quantum with slowdown ≤
/// `max_slowdown` (Table 8 uses 2%).
pub fn min_feasible_quantum(model: SchedulerModel, max_slowdown: f64) -> SimSpan {
    let by_overhead = SimSpan::from_secs_f64(model.switch_overhead().as_secs_f64() / max_slowdown);
    by_overhead.max(model.quantum_floor())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table8_slowdowns_at_published_quanta() {
        // RMS: 1.8% at 30 s.
        let rms = slowdown(SchedulerModel::Rms, SimSpan::from_secs(30)).unwrap();
        assert!((rms - 0.018).abs() < 0.001, "RMS slowdown {rms:.4}");
        // SCore-D: 2% at 100 ms.
        let scored = slowdown(SchedulerModel::ScoreD, SimSpan::from_millis(100)).unwrap();
        assert!(
            (scored - 0.02).abs() < 0.001,
            "SCore-D slowdown {scored:.4}"
        );
        // STORM: no observable slowdown at 2 ms (0.25%).
        let storm = slowdown(SchedulerModel::Storm, SimSpan::from_millis(2)).unwrap();
        assert!(storm < 0.005, "STORM slowdown {storm:.4}");
    }

    #[test]
    fn min_feasible_quanta_ordering() {
        let rms = min_feasible_quantum(SchedulerModel::Rms, 0.02);
        let scored = min_feasible_quantum(SchedulerModel::ScoreD, 0.02);
        let storm = min_feasible_quantum(SchedulerModel::Storm, 0.02);
        // RMS ≈ 27 s, SCore-D ≈ 100 ms, STORM ≈ 280 µs (floor-limited).
        assert!(rms.as_secs_f64() > 20.0);
        assert!((scored.as_millis_f64() - 100.0).abs() < 1.0);
        assert_eq!(storm, SimSpan::from_micros(280));
        // "Two orders of magnitude better than the best reported numbers."
        assert!(scored.as_nanos() >= 100 * storm.as_nanos());
        assert!(rms.as_nanos() > 100 * scored.as_nanos());
    }

    #[test]
    fn below_floor_is_infeasible() {
        assert!(slowdown(SchedulerModel::Storm, SimSpan::from_micros(100)).is_none());
        assert!(slowdown(SchedulerModel::ScoreD, SimSpan::from_micros(500)).is_none());
        assert!(slowdown(SchedulerModel::Rms, SimSpan::from_millis(100)).is_none());
        assert!(slowdown(SchedulerModel::Storm, SimSpan::from_micros(300)).is_some());
    }

    #[test]
    fn slowdown_decreases_with_quantum() {
        for m in SchedulerModel::ALL {
            let mut last = f64::INFINITY;
            let mut q = m.quantum_floor();
            for _ in 0..8 {
                let s = slowdown(m, q).unwrap();
                assert!(s <= last);
                last = s;
                q = q * 2;
            }
        }
    }
}
