//! Baseline job launchers: fitted curves, measured points, and structural
//! simulations.
//!
//! Table 6 collects launch times from the literature; Table 7 extrapolates
//! each to 4 096 nodes with the fitted expressions reproduced verbatim
//! below (times in seconds, `lg` = log₂):
//!
//! | system | fit | measured anchor |
//! |---|---|---|
//! | rsh    | `0.934·n + 1.266`      | 90 s for a minimal job on 95 nodes |
//! | RMS    | `0.077·n + 1.092`      | 5.9 s for 12 MB on 64 nodes |
//! | GLUnix | `0.012·n + 0.228`      | 1.3 s minimal on 95 nodes |
//! | Cplant | `1.379·lg n + 6.177`   | 20 s for 12 MB on 1 010 nodes |
//! | BProc  | `0.413·lg n − 0.084`   | 2.7 s for 12 MB on 100 nodes |
//! | STORM  | Eq. 3 (storm-model)    | 0.11 s for 12 MB on 64 nodes |

use storm_fs::NfsServer;
use storm_sim::{DeterministicRng, SimSpan};

/// A baseline (or STORM itself) with a published launch-time curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Launcher {
    /// Iterated remote shell (`rsh` in a loop).
    Rsh,
    /// Quadrics RMS.
    Rms,
    /// GLUnix global-layer Unix.
    GLUnix,
    /// Sandia Cplant (tree-based launch over Myrinet).
    Cplant,
    /// BProc, the Beowulf distributed process space.
    BProc,
    /// STORM (this paper).
    Storm,
}

/// A measured data point from the literature (Table 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredPoint {
    /// Which system.
    pub launcher: Launcher,
    /// Cluster size of the measurement.
    pub nodes: u32,
    /// Binary size (0 for "minimal job").
    pub binary_mb: u32,
    /// Reported launch time.
    pub time: SimSpan,
}

impl Launcher {
    /// All six systems in Table 6/7 order.
    pub const ALL: [Launcher; 6] = [
        Launcher::Rsh,
        Launcher::Rms,
        Launcher::GLUnix,
        Launcher::Cplant,
        Launcher::BProc,
        Launcher::Storm,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Launcher::Rsh => "rsh",
            Launcher::Rms => "RMS",
            Launcher::GLUnix => "GLUnix",
            Launcher::Cplant => "Cplant",
            Launcher::BProc => "BProc",
            Launcher::Storm => "STORM",
        }
    }

    /// The fitted extrapolation curve (Table 7), in seconds for `nodes`.
    pub fn fitted_time_secs(&self, nodes: u32) -> f64 {
        let n = f64::from(nodes.max(1));
        let lg = n.log2();
        match self {
            Launcher::Rsh => 0.934 * n + 1.266,
            Launcher::Rms => 0.077 * n + 1.092,
            Launcher::GLUnix => 0.012 * n + 0.228,
            Launcher::Cplant => 1.379 * lg + 6.177,
            Launcher::BProc => (0.413 * lg - 0.084).max(0.0),
            Launcher::Storm => storm_model::t_launch_es40(nodes).as_secs_f64(),
        }
    }

    /// Whether the fitted curve grows logarithmically (Cplant, BProc,
    /// STORM) rather than linearly.
    pub fn scales_logarithmically(&self) -> bool {
        matches!(self, Launcher::Cplant | Launcher::BProc | Launcher::Storm)
    }

    /// The measured anchor point from the literature (Table 6).
    pub fn measured(&self) -> MeasuredPoint {
        let (nodes, binary_mb, secs) = match self {
            Launcher::Rsh => (95, 0, 90.0),
            Launcher::Rms => (64, 12, 5.9),
            Launcher::GLUnix => (95, 0, 1.3),
            Launcher::Cplant => (1_010, 12, 20.0),
            Launcher::BProc => (100, 12, 2.7),
            Launcher::Storm => (64, 12, 0.11),
        };
        MeasuredPoint {
            launcher: *self,
            nodes,
            binary_mb,
            time: SimSpan::from_secs_f64(secs),
        }
    }
}

/// Structural simulations of the launcher families over the same substrate
/// models STORM runs on — not just curve fits, but the actual serial /
/// shared-server / tree distribution mechanics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimulatedLauncher {
    /// A shell script running `rsh node program &` node by node: per-node
    /// connection setup serialises on the master.
    SerialRsh,
    /// All nodes demand-page the binary from one NFS server at once — the
    /// traditional approach §5.1 calls "inherently nonscalable".
    NfsDemandPaging,
    /// A log-depth binary-distribution tree (the Cplant/BProc family):
    /// each level forwards the whole image to `fanout` children.
    DistributionTree {
        /// Tree fan-out.
        fanout: u32,
    },
}

impl SimulatedLauncher {
    /// Simulate a launch of a `binary_bytes` image on `nodes` nodes.
    /// Returns `None` when the launch *fails* (NFS server timeout — the
    /// failure mode the paper attributes to loaded file servers).
    pub fn launch_time(
        &self,
        nodes: u32,
        binary_bytes: u64,
        rng: &mut DeterministicRng,
    ) -> Option<SimSpan> {
        assert!(nodes > 0);
        match self {
            SimulatedLauncher::SerialRsh => {
                // Connection setup + authentication + spawn, ~0.9 s each,
                // strictly sequential from the master; the binary comes from
                // a shared filesystem page cache so size barely matters.
                let mut total = SimSpan::from_millis(1266 / 2);
                for _ in 0..nodes {
                    let setup = 0.934 * rng.lognormal_jitter(0.05);
                    total += SimSpan::from_secs_f64(setup);
                }
                Some(total)
            }
            SimulatedLauncher::NfsDemandPaging => {
                let server = NfsServer::default();
                let span = server.concurrent_read_span(nodes, binary_bytes)?;
                // Plus the fork/exec tail once pages are resident.
                Some(span + SimSpan::from_millis(300))
            }
            SimulatedLauncher::DistributionTree { fanout } => {
                assert!(*fanout >= 2);
                // Depth of the tree over `nodes` leaves.
                let mut depth = 0u32;
                let mut covered = 1u64;
                while covered < u64::from(nodes) {
                    covered *= u64::from(*fanout);
                    depth += 1;
                }
                // Each level: store-and-forward of the whole image over
                // ~50 MB/s effective per-link (Myrinet-era), plus per-level
                // control cost.
                let per_level =
                    SimSpan::for_bytes(binary_bytes, 50.0e6) + SimSpan::from_millis(150);
                let spawn_tail = SimSpan::from_millis(500);
                Some(per_level * u64::from(depth.max(1)) + spawn_tail)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_extrapolations_at_4096_nodes() {
        // Table 7's stated values at 4 096 nodes.
        let cases = [
            (Launcher::Rsh, 3_827.10),
            (Launcher::Rms, 316.48), // 0.077·4096 + 1.092 (paper prints 317.67)
            (Launcher::GLUnix, 49.38),
            (Launcher::Cplant, 22.73),
            (Launcher::BProc, 4.87),
        ];
        for (l, want) in cases {
            let got = l.fitted_time_secs(4096);
            assert!(
                (got - want).abs() / want < 0.01,
                "{}: {got:.2} vs table {want:.2}",
                l.name()
            );
        }
        // STORM: 0.11 s, essentially flat.
        let storm = Launcher::Storm.fitted_time_secs(4096);
        assert!(storm < 0.15, "STORM at 4 096 nodes: {storm:.3} s");
    }

    #[test]
    fn fitted_curves_match_measured_anchors_roughly() {
        // The fits were derived from the measured points, so they should
        // pass near them (within ~35% — they are straight-line fits over
        // few points).
        for l in Launcher::ALL {
            let m = l.measured();
            let fit = l.fitted_time_secs(m.nodes);
            let meas = m.time.as_secs_f64();
            assert!(
                (fit - meas).abs() / meas < 0.35,
                "{}: fit {fit:.2} vs measured {meas:.2}",
                l.name()
            );
        }
    }

    #[test]
    fn storm_dominates_everything_at_every_scale() {
        let mut n = 1u32;
        while n <= 16_384 {
            let storm = Launcher::Storm.fitted_time_secs(n);
            for l in Launcher::ALL {
                if l != Launcher::Storm && n >= 4 {
                    assert!(
                        l.fitted_time_secs(n) > storm,
                        "{} beats STORM at {n} nodes?!",
                        l.name()
                    );
                }
            }
            n *= 2;
        }
    }

    #[test]
    fn fig12_renormalisation_factors() {
        // Fig. 12: Cplant and BProc renormalised to STORM = 1.0; at 4 096
        // nodes Cplant ≈ 200× and BProc ≈ 40× slower.
        let storm = Launcher::Storm.fitted_time_secs(4096);
        let cplant = Launcher::Cplant.fitted_time_secs(4096) / storm;
        let bproc = Launcher::BProc.fitted_time_secs(4096) / storm;
        assert!(
            cplant > 150.0 && cplant < 250.0,
            "Cplant factor {cplant:.0}"
        );
        assert!(bproc > 30.0 && bproc < 60.0, "BProc factor {bproc:.0}");
    }

    #[test]
    fn serial_rsh_is_linear() {
        let mut rng = DeterministicRng::new(1);
        let t64 = SimulatedLauncher::SerialRsh
            .launch_time(64, 0, &mut rng)
            .unwrap();
        let t128 = SimulatedLauncher::SerialRsh
            .launch_time(128, 0, &mut rng)
            .unwrap();
        let ratio = t128.as_secs_f64() / t64.as_secs_f64();
        assert!((ratio - 2.0).abs() < 0.2, "rsh doubling ratio {ratio:.2}");
        // Matches the GLUnix paper's observation: ~90 s on 95 nodes.
        let mut rng = DeterministicRng::new(2);
        let t95 = SimulatedLauncher::SerialRsh
            .launch_time(95, 0, &mut rng)
            .unwrap();
        assert!((t95.as_secs_f64() - 90.0).abs() < 5.0, "{t95}");
    }

    #[test]
    fn nfs_demand_paging_collapses_and_fails() {
        let mut rng = DeterministicRng::new(3);
        let small = SimulatedLauncher::NfsDemandPaging
            .launch_time(4, 12_000_000, &mut rng)
            .unwrap();
        let big = SimulatedLauncher::NfsDemandPaging
            .launch_time(256, 12_000_000, &mut rng)
            .unwrap();
        assert!(big.as_secs_f64() > 30.0 * small.as_secs_f64());
        // "File servers … tend to fail with timeout errors."
        assert!(SimulatedLauncher::NfsDemandPaging
            .launch_time(2048, 12_000_000, &mut rng)
            .is_none());
    }

    #[test]
    fn distribution_tree_is_logarithmic() {
        let mut rng = DeterministicRng::new(4);
        let tree = SimulatedLauncher::DistributionTree { fanout: 2 };
        let t64 = tree.launch_time(64, 12_000_000, &mut rng).unwrap();
        let t4096 = tree.launch_time(4096, 12_000_000, &mut rng).unwrap();
        // 6 levels vs 12 levels: ratio ≈ 2, not 64.
        let ratio = t4096.as_secs_f64() / t64.as_secs_f64();
        assert!(ratio < 2.2, "tree ratio {ratio:.2}");
        // BProc's measured 2.7 s on 100 nodes is in this regime.
        let t100 = tree.launch_time(100, 12_000_000, &mut rng).unwrap();
        assert!(
            t100.as_secs_f64() > 1.5 && t100.as_secs_f64() < 4.5,
            "{t100}"
        );
    }

    #[test]
    fn measured_points_table6() {
        assert_eq!(Launcher::Rsh.measured().nodes, 95);
        assert_eq!(Launcher::Cplant.measured().nodes, 1_010);
        assert_eq!(
            Launcher::Storm.measured().time,
            SimSpan::from_secs_f64(0.11)
        );
        assert!(Launcher::Cplant.scales_logarithmically());
        assert!(!Launcher::Rms.scales_logarithmically());
    }
}
