//! # storm-baselines — the systems STORM is compared against
//!
//! §5 compares STORM against published job-launch results (Table 6),
//! extrapolates them to 4 096 nodes with fitted curves (Table 7, Fig. 11,
//! Fig. 12), and against gang-scheduler quanta (Table 8). This crate
//! provides:
//!
//! * [`launch`] — the fitted launch-time curves and the measured data
//!   points, plus *structural* simulations of the three launcher families
//!   (serial remote shell, shared-filesystem demand paging, binary
//!   distribution trees) over the same substrate models STORM uses.
//! * [`sched`] — minimal-feasible-quantum models for RMS and SCore-D
//!   (Table 8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod launch;
pub mod sched;

pub use launch::{Launcher, MeasuredPoint, SimulatedLauncher};
pub use sched::{min_feasible_quantum, slowdown, SchedulerModel};
