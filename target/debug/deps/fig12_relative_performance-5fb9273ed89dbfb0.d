/root/repo/target/debug/deps/fig12_relative_performance-5fb9273ed89dbfb0.d: crates/storm-bench/benches/fig12_relative_performance.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_relative_performance-5fb9273ed89dbfb0.rmeta: crates/storm-bench/benches/fig12_relative_performance.rs Cargo.toml

crates/storm-bench/benches/fig12_relative_performance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
