/root/repo/target/debug/deps/criterion_simulator-bc3fdf5cfbbcfbe4.d: crates/storm-bench/benches/criterion_simulator.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion_simulator-bc3fdf5cfbbcfbe4.rmeta: crates/storm-bench/benches/criterion_simulator.rs Cargo.toml

crates/storm-bench/benches/criterion_simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
