/root/repo/target/debug/deps/storm-1286777970dd641d.d: src/lib.rs

/root/repo/target/debug/deps/storm-1286777970dd641d: src/lib.rs

src/lib.rs:
