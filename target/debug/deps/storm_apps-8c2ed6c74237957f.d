/root/repo/target/debug/deps/storm_apps-8c2ed6c74237957f.d: crates/storm-apps/src/lib.rs crates/storm-apps/src/spec.rs crates/storm-apps/src/stream.rs crates/storm-apps/src/workload.rs

/root/repo/target/debug/deps/libstorm_apps-8c2ed6c74237957f.rlib: crates/storm-apps/src/lib.rs crates/storm-apps/src/spec.rs crates/storm-apps/src/stream.rs crates/storm-apps/src/workload.rs

/root/repo/target/debug/deps/libstorm_apps-8c2ed6c74237957f.rmeta: crates/storm-apps/src/lib.rs crates/storm-apps/src/spec.rs crates/storm-apps/src/stream.rs crates/storm-apps/src/workload.rs

crates/storm-apps/src/lib.rs:
crates/storm-apps/src/spec.rs:
crates/storm-apps/src/stream.rs:
crates/storm-apps/src/workload.rs:
