/root/repo/target/debug/deps/fig8_chunk_slots-ad5cd3efbf1aa396.d: crates/storm-bench/benches/fig8_chunk_slots.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_chunk_slots-ad5cd3efbf1aa396.rmeta: crates/storm-bench/benches/fig8_chunk_slots.rs Cargo.toml

crates/storm-bench/benches/fig8_chunk_slots.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
