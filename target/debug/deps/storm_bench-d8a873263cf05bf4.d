/root/repo/target/debug/deps/storm_bench-d8a873263cf05bf4.d: crates/storm-bench/src/lib.rs

/root/repo/target/debug/deps/libstorm_bench-d8a873263cf05bf4.rlib: crates/storm-bench/src/lib.rs

/root/repo/target/debug/deps/libstorm_bench-d8a873263cf05bf4.rmeta: crates/storm-bench/src/lib.rs

crates/storm-bench/src/lib.rs:
