/root/repo/target/debug/deps/fig2_launch_unloaded-3c39ea8c7d46109f.d: crates/storm-bench/benches/fig2_launch_unloaded.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_launch_unloaded-3c39ea8c7d46109f.rmeta: crates/storm-bench/benches/fig2_launch_unloaded.rs Cargo.toml

crates/storm-bench/benches/fig2_launch_unloaded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
