/root/repo/target/debug/deps/storm_mech-fe5fe4ca2ac7329e.d: crates/storm-mech/src/lib.rs crates/storm-mech/src/memory.rs crates/storm-mech/src/mech.rs crates/storm-mech/src/types.rs

/root/repo/target/debug/deps/storm_mech-fe5fe4ca2ac7329e: crates/storm-mech/src/lib.rs crates/storm-mech/src/memory.rs crates/storm-mech/src/mech.rs crates/storm-mech/src/types.rs

crates/storm-mech/src/lib.rs:
crates/storm-mech/src/memory.rs:
crates/storm-mech/src/mech.rs:
crates/storm-mech/src/types.rs:
