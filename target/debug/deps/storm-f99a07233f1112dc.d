/root/repo/target/debug/deps/storm-f99a07233f1112dc.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstorm-f99a07233f1112dc.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
