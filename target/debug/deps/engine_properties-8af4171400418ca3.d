/root/repo/target/debug/deps/engine_properties-8af4171400418ca3.d: crates/storm-sim/tests/engine_properties.rs Cargo.toml

/root/repo/target/debug/deps/libengine_properties-8af4171400418ca3.rmeta: crates/storm-sim/tests/engine_properties.rs Cargo.toml

crates/storm-sim/tests/engine_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
