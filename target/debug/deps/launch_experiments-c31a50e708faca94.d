/root/repo/target/debug/deps/launch_experiments-c31a50e708faca94.d: tests/launch_experiments.rs

/root/repo/target/debug/deps/launch_experiments-c31a50e708faca94: tests/launch_experiments.rs

tests/launch_experiments.rs:
