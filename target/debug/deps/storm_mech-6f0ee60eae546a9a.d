/root/repo/target/debug/deps/storm_mech-6f0ee60eae546a9a.d: crates/storm-mech/src/lib.rs crates/storm-mech/src/mech.rs crates/storm-mech/src/memory.rs crates/storm-mech/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libstorm_mech-6f0ee60eae546a9a.rmeta: crates/storm-mech/src/lib.rs crates/storm-mech/src/mech.rs crates/storm-mech/src/memory.rs crates/storm-mech/src/types.rs Cargo.toml

crates/storm-mech/src/lib.rs:
crates/storm-mech/src/mech.rs:
crates/storm-mech/src/memory.rs:
crates/storm-mech/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
