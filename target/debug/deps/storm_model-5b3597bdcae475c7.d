/root/repo/target/debug/deps/storm_model-5b3597bdcae475c7.d: crates/storm-model/src/lib.rs

/root/repo/target/debug/deps/storm_model-5b3597bdcae475c7: crates/storm-model/src/lib.rs

crates/storm-model/src/lib.rs:
