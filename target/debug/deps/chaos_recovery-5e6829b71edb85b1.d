/root/repo/target/debug/deps/chaos_recovery-5e6829b71edb85b1.d: crates/storm-bench/benches/chaos_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_recovery-5e6829b71edb85b1.rmeta: crates/storm-bench/benches/chaos_recovery.rs Cargo.toml

crates/storm-bench/benches/chaos_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
