/root/repo/target/debug/deps/table5_mechanisms-6b64e4fc394c5580.d: crates/storm-bench/benches/table5_mechanisms.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_mechanisms-6b64e4fc394c5580.rmeta: crates/storm-bench/benches/table5_mechanisms.rs Cargo.toml

crates/storm-bench/benches/table5_mechanisms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
