/root/repo/target/debug/deps/fig11_launcher_comparison-ffbc189fc32fdf23.d: crates/storm-bench/benches/fig11_launcher_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_launcher_comparison-ffbc189fc32fdf23.rmeta: crates/storm-bench/benches/fig11_launcher_comparison.rs Cargo.toml

crates/storm-bench/benches/fig11_launcher_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
