/root/repo/target/debug/deps/fig4_time_quantum-38e1c4a4945f1350.d: crates/storm-bench/benches/fig4_time_quantum.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_time_quantum-38e1c4a4945f1350.rmeta: crates/storm-bench/benches/fig4_time_quantum.rs Cargo.toml

crates/storm-bench/benches/fig4_time_quantum.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
