/root/repo/target/debug/deps/rand-036ec610ce712c8b.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-036ec610ce712c8b.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
