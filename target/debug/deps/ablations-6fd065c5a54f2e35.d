/root/repo/target/debug/deps/ablations-6fd065c5a54f2e35.d: crates/storm-bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-6fd065c5a54f2e35.rmeta: crates/storm-bench/benches/ablations.rs Cargo.toml

crates/storm-bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
