/root/repo/target/debug/deps/storm_net-36d32ea816f2816d.d: crates/storm-net/src/lib.rs crates/storm-net/src/contention.rs crates/storm-net/src/networks.rs crates/storm-net/src/qsnet.rs crates/storm-net/src/topology.rs

/root/repo/target/debug/deps/storm_net-36d32ea816f2816d: crates/storm-net/src/lib.rs crates/storm-net/src/contention.rs crates/storm-net/src/networks.rs crates/storm-net/src/qsnet.rs crates/storm-net/src/topology.rs

crates/storm-net/src/lib.rs:
crates/storm-net/src/contention.rs:
crates/storm-net/src/networks.rs:
crates/storm-net/src/qsnet.rs:
crates/storm-net/src/topology.rs:
