/root/repo/target/debug/deps/storm_bench-8a30ff1e83d532ab.d: crates/storm-bench/src/lib.rs

/root/repo/target/debug/deps/storm_bench-8a30ff1e83d532ab: crates/storm-bench/src/lib.rs

crates/storm-bench/src/lib.rs:
