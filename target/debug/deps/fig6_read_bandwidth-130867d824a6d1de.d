/root/repo/target/debug/deps/fig6_read_bandwidth-130867d824a6d1de.d: crates/storm-bench/benches/fig6_read_bandwidth.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_read_bandwidth-130867d824a6d1de.rmeta: crates/storm-bench/benches/fig6_read_bandwidth.rs Cargo.toml

crates/storm-bench/benches/fig6_read_bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
