/root/repo/target/debug/deps/fig3_launch_loaded-3de3d8d204ee8f55.d: crates/storm-bench/benches/fig3_launch_loaded.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_launch_loaded-3de3d8d204ee8f55.rmeta: crates/storm-bench/benches/fig3_launch_loaded.rs Cargo.toml

crates/storm-bench/benches/fig3_launch_loaded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
