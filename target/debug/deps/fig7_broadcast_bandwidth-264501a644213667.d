/root/repo/target/debug/deps/fig7_broadcast_bandwidth-264501a644213667.d: crates/storm-bench/benches/fig7_broadcast_bandwidth.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_broadcast_bandwidth-264501a644213667.rmeta: crates/storm-bench/benches/fig7_broadcast_bandwidth.rs Cargo.toml

crates/storm-bench/benches/fig7_broadcast_bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
