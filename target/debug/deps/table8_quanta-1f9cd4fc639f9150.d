/root/repo/target/debug/deps/table8_quanta-1f9cd4fc639f9150.d: crates/storm-bench/benches/table8_quanta.rs Cargo.toml

/root/repo/target/debug/deps/libtable8_quanta-1f9cd4fc639f9150.rmeta: crates/storm-bench/benches/table8_quanta.rs Cargo.toml

crates/storm-bench/benches/table8_quanta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
