/root/repo/target/debug/deps/chaos-f74ce70800ebb1fc.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-f74ce70800ebb1fc: tests/chaos.rs

tests/chaos.rs:
