/root/repo/target/debug/deps/mech_properties-d66a472c42f9fc2a.d: crates/storm-mech/tests/mech_properties.rs Cargo.toml

/root/repo/target/debug/deps/libmech_properties-d66a472c42f9fc2a.rmeta: crates/storm-mech/tests/mech_properties.rs Cargo.toml

crates/storm-mech/tests/mech_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
