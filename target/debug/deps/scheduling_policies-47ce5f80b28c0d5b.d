/root/repo/target/debug/deps/scheduling_policies-47ce5f80b28c0d5b.d: tests/scheduling_policies.rs Cargo.toml

/root/repo/target/debug/deps/libscheduling_policies-47ce5f80b28c0d5b.rmeta: tests/scheduling_policies.rs Cargo.toml

tests/scheduling_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
