/root/repo/target/debug/deps/properties-e1dc7b12f70f6765.d: tests/properties.rs

/root/repo/target/debug/deps/properties-e1dc7b12f70f6765: tests/properties.rs

tests/properties.rs:
