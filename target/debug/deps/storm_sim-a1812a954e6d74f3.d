/root/repo/target/debug/deps/storm_sim-a1812a954e6d74f3.d: crates/storm-sim/src/lib.rs crates/storm-sim/src/engine.rs crates/storm-sim/src/queue.rs crates/storm-sim/src/rng.rs crates/storm-sim/src/stats.rs crates/storm-sim/src/time.rs crates/storm-sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libstorm_sim-a1812a954e6d74f3.rmeta: crates/storm-sim/src/lib.rs crates/storm-sim/src/engine.rs crates/storm-sim/src/queue.rs crates/storm-sim/src/rng.rs crates/storm-sim/src/stats.rs crates/storm-sim/src/time.rs crates/storm-sim/src/trace.rs Cargo.toml

crates/storm-sim/src/lib.rs:
crates/storm-sim/src/engine.rs:
crates/storm-sim/src/queue.rs:
crates/storm-sim/src/rng.rs:
crates/storm-sim/src/stats.rs:
crates/storm-sim/src/time.rs:
crates/storm-sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
