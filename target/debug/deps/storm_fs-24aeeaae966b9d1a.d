/root/repo/target/debug/deps/storm_fs-24aeeaae966b9d1a.d: crates/storm-fs/src/lib.rs

/root/repo/target/debug/deps/libstorm_fs-24aeeaae966b9d1a.rlib: crates/storm-fs/src/lib.rs

/root/repo/target/debug/deps/libstorm_fs-24aeeaae966b9d1a.rmeta: crates/storm-fs/src/lib.rs

crates/storm-fs/src/lib.rs:
