/root/repo/target/debug/deps/engine_properties-ffaca37cfcddf3dd.d: crates/storm-sim/tests/engine_properties.rs

/root/repo/target/debug/deps/engine_properties-ffaca37cfcddf3dd: crates/storm-sim/tests/engine_properties.rs

crates/storm-sim/tests/engine_properties.rs:
