/root/repo/target/debug/deps/rand-8be752ac74417a54.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8be752ac74417a54.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8be752ac74417a54.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
