/root/repo/target/debug/deps/determinism-a99b55b6a497bbbd.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-a99b55b6a497bbbd.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
