/root/repo/target/debug/deps/storm_cli-d899c9c140282728.d: src/bin/storm-cli.rs Cargo.toml

/root/repo/target/debug/deps/libstorm_cli-d899c9c140282728.rmeta: src/bin/storm-cli.rs Cargo.toml

src/bin/storm-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
