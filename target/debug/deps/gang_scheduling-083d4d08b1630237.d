/root/repo/target/debug/deps/gang_scheduling-083d4d08b1630237.d: tests/gang_scheduling.rs

/root/repo/target/debug/deps/gang_scheduling-083d4d08b1630237: tests/gang_scheduling.rs

tests/gang_scheduling.rs:
