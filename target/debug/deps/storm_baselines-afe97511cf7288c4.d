/root/repo/target/debug/deps/storm_baselines-afe97511cf7288c4.d: crates/storm-baselines/src/lib.rs crates/storm-baselines/src/launch.rs crates/storm-baselines/src/sched.rs Cargo.toml

/root/repo/target/debug/deps/libstorm_baselines-afe97511cf7288c4.rmeta: crates/storm-baselines/src/lib.rs crates/storm-baselines/src/launch.rs crates/storm-baselines/src/sched.rs Cargo.toml

crates/storm-baselines/src/lib.rs:
crates/storm-baselines/src/launch.rs:
crates/storm-baselines/src/sched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
