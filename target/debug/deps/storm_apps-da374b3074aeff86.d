/root/repo/target/debug/deps/storm_apps-da374b3074aeff86.d: crates/storm-apps/src/lib.rs crates/storm-apps/src/spec.rs crates/storm-apps/src/stream.rs crates/storm-apps/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libstorm_apps-da374b3074aeff86.rmeta: crates/storm-apps/src/lib.rs crates/storm-apps/src/spec.rs crates/storm-apps/src/stream.rs crates/storm-apps/src/workload.rs Cargo.toml

crates/storm-apps/src/lib.rs:
crates/storm-apps/src/spec.rs:
crates/storm-apps/src/stream.rs:
crates/storm-apps/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
