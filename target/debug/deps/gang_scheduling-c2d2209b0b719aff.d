/root/repo/target/debug/deps/gang_scheduling-c2d2209b0b719aff.d: tests/gang_scheduling.rs Cargo.toml

/root/repo/target/debug/deps/libgang_scheduling-c2d2209b0b719aff.rmeta: tests/gang_scheduling.rs Cargo.toml

tests/gang_scheduling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
