/root/repo/target/debug/deps/storm_model-41aba4a82cb96b11.d: crates/storm-model/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstorm_model-41aba4a82cb96b11.rmeta: crates/storm-model/src/lib.rs Cargo.toml

crates/storm-model/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
