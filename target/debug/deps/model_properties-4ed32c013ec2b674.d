/root/repo/target/debug/deps/model_properties-4ed32c013ec2b674.d: crates/storm-net/tests/model_properties.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_properties-4ed32c013ec2b674.rmeta: crates/storm-net/tests/model_properties.rs Cargo.toml

crates/storm-net/tests/model_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
