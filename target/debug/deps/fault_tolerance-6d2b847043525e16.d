/root/repo/target/debug/deps/fault_tolerance-6d2b847043525e16.d: tests/fault_tolerance.rs Cargo.toml

/root/repo/target/debug/deps/libfault_tolerance-6d2b847043525e16.rmeta: tests/fault_tolerance.rs Cargo.toml

tests/fault_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
