/root/repo/target/debug/deps/scheduling_policies-7575d4c97ed3dfae.d: tests/scheduling_policies.rs

/root/repo/target/debug/deps/scheduling_policies-7575d4c97ed3dfae: tests/scheduling_policies.rs

tests/scheduling_policies.rs:
