/root/repo/target/debug/deps/properties-e8c8d669036aead1.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-e8c8d669036aead1.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
