/root/repo/target/debug/deps/storm-70b2cc741f5aa3ef.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstorm-70b2cc741f5aa3ef.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
