/root/repo/target/debug/deps/storm_cli-8fd3dbaf1f718213.d: src/bin/storm-cli.rs

/root/repo/target/debug/deps/storm_cli-8fd3dbaf1f718213: src/bin/storm-cli.rs

src/bin/storm-cli.rs:
