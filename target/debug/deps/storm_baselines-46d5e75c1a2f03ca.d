/root/repo/target/debug/deps/storm_baselines-46d5e75c1a2f03ca.d: crates/storm-baselines/src/lib.rs crates/storm-baselines/src/launch.rs crates/storm-baselines/src/sched.rs

/root/repo/target/debug/deps/libstorm_baselines-46d5e75c1a2f03ca.rlib: crates/storm-baselines/src/lib.rs crates/storm-baselines/src/launch.rs crates/storm-baselines/src/sched.rs

/root/repo/target/debug/deps/libstorm_baselines-46d5e75c1a2f03ca.rmeta: crates/storm-baselines/src/lib.rs crates/storm-baselines/src/launch.rs crates/storm-baselines/src/sched.rs

crates/storm-baselines/src/lib.rs:
crates/storm-baselines/src/launch.rs:
crates/storm-baselines/src/sched.rs:
