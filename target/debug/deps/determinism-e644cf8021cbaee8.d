/root/repo/target/debug/deps/determinism-e644cf8021cbaee8.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-e644cf8021cbaee8: tests/determinism.rs

tests/determinism.rs:
