/root/repo/target/debug/deps/rand-2312169bdb021820.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-2312169bdb021820.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
