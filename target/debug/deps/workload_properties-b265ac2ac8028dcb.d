/root/repo/target/debug/deps/workload_properties-b265ac2ac8028dcb.d: crates/storm-apps/tests/workload_properties.rs Cargo.toml

/root/repo/target/debug/deps/libworkload_properties-b265ac2ac8028dcb.rmeta: crates/storm-apps/tests/workload_properties.rs Cargo.toml

crates/storm-apps/tests/workload_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
