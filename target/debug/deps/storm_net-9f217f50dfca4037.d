/root/repo/target/debug/deps/storm_net-9f217f50dfca4037.d: crates/storm-net/src/lib.rs crates/storm-net/src/contention.rs crates/storm-net/src/networks.rs crates/storm-net/src/qsnet.rs crates/storm-net/src/topology.rs

/root/repo/target/debug/deps/libstorm_net-9f217f50dfca4037.rlib: crates/storm-net/src/lib.rs crates/storm-net/src/contention.rs crates/storm-net/src/networks.rs crates/storm-net/src/qsnet.rs crates/storm-net/src/topology.rs

/root/repo/target/debug/deps/libstorm_net-9f217f50dfca4037.rmeta: crates/storm-net/src/lib.rs crates/storm-net/src/contention.rs crates/storm-net/src/networks.rs crates/storm-net/src/qsnet.rs crates/storm-net/src/topology.rs

crates/storm-net/src/lib.rs:
crates/storm-net/src/contention.rs:
crates/storm-net/src/networks.rs:
crates/storm-net/src/qsnet.rs:
crates/storm-net/src/topology.rs:
