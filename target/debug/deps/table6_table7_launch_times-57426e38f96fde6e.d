/root/repo/target/debug/deps/table6_table7_launch_times-57426e38f96fde6e.d: crates/storm-bench/benches/table6_table7_launch_times.rs Cargo.toml

/root/repo/target/debug/deps/libtable6_table7_launch_times-57426e38f96fde6e.rmeta: crates/storm-bench/benches/table6_table7_launch_times.rs Cargo.toml

crates/storm-bench/benches/table6_table7_launch_times.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
