/root/repo/target/debug/deps/storm_fs-1c5ee169db25ca58.d: crates/storm-fs/src/lib.rs

/root/repo/target/debug/deps/storm_fs-1c5ee169db25ca58: crates/storm-fs/src/lib.rs

crates/storm-fs/src/lib.rs:
