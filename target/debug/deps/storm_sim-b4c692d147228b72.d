/root/repo/target/debug/deps/storm_sim-b4c692d147228b72.d: crates/storm-sim/src/lib.rs crates/storm-sim/src/engine.rs crates/storm-sim/src/queue.rs crates/storm-sim/src/rng.rs crates/storm-sim/src/stats.rs crates/storm-sim/src/time.rs crates/storm-sim/src/trace.rs

/root/repo/target/debug/deps/storm_sim-b4c692d147228b72: crates/storm-sim/src/lib.rs crates/storm-sim/src/engine.rs crates/storm-sim/src/queue.rs crates/storm-sim/src/rng.rs crates/storm-sim/src/stats.rs crates/storm-sim/src/time.rs crates/storm-sim/src/trace.rs

crates/storm-sim/src/lib.rs:
crates/storm-sim/src/engine.rs:
crates/storm-sim/src/queue.rs:
crates/storm-sim/src/rng.rs:
crates/storm-sim/src/stats.rs:
crates/storm-sim/src/time.rs:
crates/storm-sim/src/trace.rs:
