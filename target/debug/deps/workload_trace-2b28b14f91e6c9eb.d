/root/repo/target/debug/deps/workload_trace-2b28b14f91e6c9eb.d: crates/storm-bench/benches/workload_trace.rs Cargo.toml

/root/repo/target/debug/deps/libworkload_trace-2b28b14f91e6c9eb.rmeta: crates/storm-bench/benches/workload_trace.rs Cargo.toml

crates/storm-bench/benches/workload_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
