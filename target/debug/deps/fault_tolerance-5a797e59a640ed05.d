/root/repo/target/debug/deps/fault_tolerance-5a797e59a640ed05.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-5a797e59a640ed05: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
