/root/repo/target/debug/deps/storm_baselines-2e5d776492347691.d: crates/storm-baselines/src/lib.rs crates/storm-baselines/src/launch.rs crates/storm-baselines/src/sched.rs Cargo.toml

/root/repo/target/debug/deps/libstorm_baselines-2e5d776492347691.rmeta: crates/storm-baselines/src/lib.rs crates/storm-baselines/src/launch.rs crates/storm-baselines/src/sched.rs Cargo.toml

crates/storm-baselines/src/lib.rs:
crates/storm-baselines/src/launch.rs:
crates/storm-baselines/src/sched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
