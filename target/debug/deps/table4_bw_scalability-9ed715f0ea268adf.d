/root/repo/target/debug/deps/table4_bw_scalability-9ed715f0ea268adf.d: crates/storm-bench/benches/table4_bw_scalability.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_bw_scalability-9ed715f0ea268adf.rmeta: crates/storm-bench/benches/table4_bw_scalability.rs Cargo.toml

crates/storm-bench/benches/table4_bw_scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
