/root/repo/target/debug/deps/storm_cli-7b37391958f6a3c9.d: src/bin/storm-cli.rs Cargo.toml

/root/repo/target/debug/deps/libstorm_cli-7b37391958f6a3c9.rmeta: src/bin/storm-cli.rs Cargo.toml

src/bin/storm-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
