/root/repo/target/debug/deps/storm_net-5120dc72b89dccf1.d: crates/storm-net/src/lib.rs crates/storm-net/src/contention.rs crates/storm-net/src/networks.rs crates/storm-net/src/qsnet.rs crates/storm-net/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libstorm_net-5120dc72b89dccf1.rmeta: crates/storm-net/src/lib.rs crates/storm-net/src/contention.rs crates/storm-net/src/networks.rs crates/storm-net/src/qsnet.rs crates/storm-net/src/topology.rs Cargo.toml

crates/storm-net/src/lib.rs:
crates/storm-net/src/contention.rs:
crates/storm-net/src/networks.rs:
crates/storm-net/src/qsnet.rs:
crates/storm-net/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
