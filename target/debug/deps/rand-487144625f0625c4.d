/root/repo/target/debug/deps/rand-487144625f0625c4.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-487144625f0625c4: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
