/root/repo/target/debug/deps/storm_fs-521e6777cac382fc.d: crates/storm-fs/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstorm_fs-521e6777cac382fc.rmeta: crates/storm-fs/src/lib.rs Cargo.toml

crates/storm-fs/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
