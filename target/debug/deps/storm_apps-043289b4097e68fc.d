/root/repo/target/debug/deps/storm_apps-043289b4097e68fc.d: crates/storm-apps/src/lib.rs crates/storm-apps/src/spec.rs crates/storm-apps/src/stream.rs crates/storm-apps/src/workload.rs

/root/repo/target/debug/deps/storm_apps-043289b4097e68fc: crates/storm-apps/src/lib.rs crates/storm-apps/src/spec.rs crates/storm-apps/src/stream.rs crates/storm-apps/src/workload.rs

crates/storm-apps/src/lib.rs:
crates/storm-apps/src/spec.rs:
crates/storm-apps/src/stream.rs:
crates/storm-apps/src/workload.rs:
