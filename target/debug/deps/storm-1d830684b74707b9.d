/root/repo/target/debug/deps/storm-1d830684b74707b9.d: src/lib.rs

/root/repo/target/debug/deps/libstorm-1d830684b74707b9.rlib: src/lib.rs

/root/repo/target/debug/deps/libstorm-1d830684b74707b9.rmeta: src/lib.rs

src/lib.rs:
