/root/repo/target/debug/deps/storm_cli-1903276872836399.d: src/bin/storm-cli.rs

/root/repo/target/debug/deps/storm_cli-1903276872836399: src/bin/storm-cli.rs

src/bin/storm-cli.rs:
