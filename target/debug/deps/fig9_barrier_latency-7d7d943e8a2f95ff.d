/root/repo/target/debug/deps/fig9_barrier_latency-7d7d943e8a2f95ff.d: crates/storm-bench/benches/fig9_barrier_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_barrier_latency-7d7d943e8a2f95ff.rmeta: crates/storm-bench/benches/fig9_barrier_latency.rs Cargo.toml

crates/storm-bench/benches/fig9_barrier_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
