/root/repo/target/debug/deps/storm_baselines-5b6e68f679a82b64.d: crates/storm-baselines/src/lib.rs crates/storm-baselines/src/launch.rs crates/storm-baselines/src/sched.rs

/root/repo/target/debug/deps/storm_baselines-5b6e68f679a82b64: crates/storm-baselines/src/lib.rs crates/storm-baselines/src/launch.rs crates/storm-baselines/src/sched.rs

crates/storm-baselines/src/lib.rs:
crates/storm-baselines/src/launch.rs:
crates/storm-baselines/src/sched.rs:
