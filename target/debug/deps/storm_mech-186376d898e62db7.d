/root/repo/target/debug/deps/storm_mech-186376d898e62db7.d: crates/storm-mech/src/lib.rs crates/storm-mech/src/mech.rs crates/storm-mech/src/memory.rs crates/storm-mech/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libstorm_mech-186376d898e62db7.rmeta: crates/storm-mech/src/lib.rs crates/storm-mech/src/mech.rs crates/storm-mech/src/memory.rs crates/storm-mech/src/types.rs Cargo.toml

crates/storm-mech/src/lib.rs:
crates/storm-mech/src/mech.rs:
crates/storm-mech/src/memory.rs:
crates/storm-mech/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
