/root/repo/target/debug/deps/coscheduling_comparison-ca7b7a8e8d5cf62f.d: crates/storm-bench/benches/coscheduling_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libcoscheduling_comparison-ca7b7a8e8d5cf62f.rmeta: crates/storm-bench/benches/coscheduling_comparison.rs Cargo.toml

crates/storm-bench/benches/coscheduling_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
