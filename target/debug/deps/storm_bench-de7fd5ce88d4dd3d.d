/root/repo/target/debug/deps/storm_bench-de7fd5ce88d4dd3d.d: crates/storm-bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstorm_bench-de7fd5ce88d4dd3d.rmeta: crates/storm-bench/src/lib.rs Cargo.toml

crates/storm-bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
