/root/repo/target/debug/deps/model_properties-d62cdd282503e039.d: crates/storm-net/tests/model_properties.rs

/root/repo/target/debug/deps/model_properties-d62cdd282503e039: crates/storm-net/tests/model_properties.rs

crates/storm-net/tests/model_properties.rs:
