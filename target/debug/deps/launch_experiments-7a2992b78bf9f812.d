/root/repo/target/debug/deps/launch_experiments-7a2992b78bf9f812.d: tests/launch_experiments.rs Cargo.toml

/root/repo/target/debug/deps/liblaunch_experiments-7a2992b78bf9f812.rmeta: tests/launch_experiments.rs Cargo.toml

tests/launch_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
