/root/repo/target/debug/deps/chaos-7f77ce6ca1f21733.d: tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-7f77ce6ca1f21733.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
