/root/repo/target/debug/deps/storm_mech-10f98cea085b6498.d: crates/storm-mech/src/lib.rs crates/storm-mech/src/mech.rs crates/storm-mech/src/memory.rs crates/storm-mech/src/types.rs

/root/repo/target/debug/deps/libstorm_mech-10f98cea085b6498.rlib: crates/storm-mech/src/lib.rs crates/storm-mech/src/mech.rs crates/storm-mech/src/memory.rs crates/storm-mech/src/types.rs

/root/repo/target/debug/deps/libstorm_mech-10f98cea085b6498.rmeta: crates/storm-mech/src/lib.rs crates/storm-mech/src/mech.rs crates/storm-mech/src/memory.rs crates/storm-mech/src/types.rs

crates/storm-mech/src/lib.rs:
crates/storm-mech/src/mech.rs:
crates/storm-mech/src/memory.rs:
crates/storm-mech/src/types.rs:
