/root/repo/target/debug/deps/storm_model-85465a4fa867eab8.d: crates/storm-model/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstorm_model-85465a4fa867eab8.rmeta: crates/storm-model/src/lib.rs Cargo.toml

crates/storm-model/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
