/root/repo/target/debug/deps/workload_properties-59948a543e9141e9.d: crates/storm-apps/tests/workload_properties.rs

/root/repo/target/debug/deps/workload_properties-59948a543e9141e9: crates/storm-apps/tests/workload_properties.rs

crates/storm-apps/tests/workload_properties.rs:
