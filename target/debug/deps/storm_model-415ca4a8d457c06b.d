/root/repo/target/debug/deps/storm_model-415ca4a8d457c06b.d: crates/storm-model/src/lib.rs

/root/repo/target/debug/deps/libstorm_model-415ca4a8d457c06b.rlib: crates/storm-model/src/lib.rs

/root/repo/target/debug/deps/libstorm_model-415ca4a8d457c06b.rmeta: crates/storm-model/src/lib.rs

crates/storm-model/src/lib.rs:
