/root/repo/target/debug/deps/storm_net-c41e0a748d1926de.d: crates/storm-net/src/lib.rs crates/storm-net/src/contention.rs crates/storm-net/src/networks.rs crates/storm-net/src/qsnet.rs crates/storm-net/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libstorm_net-c41e0a748d1926de.rmeta: crates/storm-net/src/lib.rs crates/storm-net/src/contention.rs crates/storm-net/src/networks.rs crates/storm-net/src/qsnet.rs crates/storm-net/src/topology.rs Cargo.toml

crates/storm-net/src/lib.rs:
crates/storm-net/src/contention.rs:
crates/storm-net/src/networks.rs:
crates/storm-net/src/qsnet.rs:
crates/storm-net/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
