/root/repo/target/debug/deps/storm_bench-750bb5a7c1053f44.d: crates/storm-bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstorm_bench-750bb5a7c1053f44.rmeta: crates/storm-bench/src/lib.rs Cargo.toml

crates/storm-bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
