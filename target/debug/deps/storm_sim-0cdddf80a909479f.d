/root/repo/target/debug/deps/storm_sim-0cdddf80a909479f.d: crates/storm-sim/src/lib.rs crates/storm-sim/src/engine.rs crates/storm-sim/src/queue.rs crates/storm-sim/src/rng.rs crates/storm-sim/src/stats.rs crates/storm-sim/src/time.rs crates/storm-sim/src/trace.rs

/root/repo/target/debug/deps/libstorm_sim-0cdddf80a909479f.rlib: crates/storm-sim/src/lib.rs crates/storm-sim/src/engine.rs crates/storm-sim/src/queue.rs crates/storm-sim/src/rng.rs crates/storm-sim/src/stats.rs crates/storm-sim/src/time.rs crates/storm-sim/src/trace.rs

/root/repo/target/debug/deps/libstorm_sim-0cdddf80a909479f.rmeta: crates/storm-sim/src/lib.rs crates/storm-sim/src/engine.rs crates/storm-sim/src/queue.rs crates/storm-sim/src/rng.rs crates/storm-sim/src/stats.rs crates/storm-sim/src/time.rs crates/storm-sim/src/trace.rs

crates/storm-sim/src/lib.rs:
crates/storm-sim/src/engine.rs:
crates/storm-sim/src/queue.rs:
crates/storm-sim/src/rng.rs:
crates/storm-sim/src/stats.rs:
crates/storm-sim/src/time.rs:
crates/storm-sim/src/trace.rs:
