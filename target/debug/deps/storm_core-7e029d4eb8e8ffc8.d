/root/repo/target/debug/deps/storm_core-7e029d4eb8e8ffc8.d: crates/storm-core/src/lib.rs crates/storm-core/src/buddy.rs crates/storm-core/src/cluster.rs crates/storm-core/src/config.rs crates/storm-core/src/fault.rs crates/storm-core/src/job.rs crates/storm-core/src/matrix.rs crates/storm-core/src/mm.rs crates/storm-core/src/msg.rs crates/storm-core/src/nm.rs crates/storm-core/src/pl.rs crates/storm-core/src/policy.rs crates/storm-core/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libstorm_core-7e029d4eb8e8ffc8.rmeta: crates/storm-core/src/lib.rs crates/storm-core/src/buddy.rs crates/storm-core/src/cluster.rs crates/storm-core/src/config.rs crates/storm-core/src/fault.rs crates/storm-core/src/job.rs crates/storm-core/src/matrix.rs crates/storm-core/src/mm.rs crates/storm-core/src/msg.rs crates/storm-core/src/nm.rs crates/storm-core/src/pl.rs crates/storm-core/src/policy.rs crates/storm-core/src/world.rs Cargo.toml

crates/storm-core/src/lib.rs:
crates/storm-core/src/buddy.rs:
crates/storm-core/src/cluster.rs:
crates/storm-core/src/config.rs:
crates/storm-core/src/fault.rs:
crates/storm-core/src/job.rs:
crates/storm-core/src/matrix.rs:
crates/storm-core/src/mm.rs:
crates/storm-core/src/msg.rs:
crates/storm-core/src/nm.rs:
crates/storm-core/src/pl.rs:
crates/storm-core/src/policy.rs:
crates/storm-core/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
