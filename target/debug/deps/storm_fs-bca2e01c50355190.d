/root/repo/target/debug/deps/storm_fs-bca2e01c50355190.d: crates/storm-fs/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstorm_fs-bca2e01c50355190.rmeta: crates/storm-fs/src/lib.rs Cargo.toml

crates/storm-fs/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
