/root/repo/target/debug/deps/fig10_launch_model-0ca4622796f41630.d: crates/storm-bench/benches/fig10_launch_model.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_launch_model-0ca4622796f41630.rmeta: crates/storm-bench/benches/fig10_launch_model.rs Cargo.toml

crates/storm-bench/benches/fig10_launch_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
