/root/repo/target/debug/deps/mech_properties-8664eb3edcf0de4d.d: crates/storm-mech/tests/mech_properties.rs

/root/repo/target/debug/deps/mech_properties-8664eb3edcf0de4d: crates/storm-mech/tests/mech_properties.rs

crates/storm-mech/tests/mech_properties.rs:
