/root/repo/target/debug/deps/storm_sim-5ba84275eb4cd978.d: crates/storm-sim/src/lib.rs crates/storm-sim/src/engine.rs crates/storm-sim/src/queue.rs crates/storm-sim/src/rng.rs crates/storm-sim/src/stats.rs crates/storm-sim/src/time.rs crates/storm-sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libstorm_sim-5ba84275eb4cd978.rmeta: crates/storm-sim/src/lib.rs crates/storm-sim/src/engine.rs crates/storm-sim/src/queue.rs crates/storm-sim/src/rng.rs crates/storm-sim/src/stats.rs crates/storm-sim/src/time.rs crates/storm-sim/src/trace.rs Cargo.toml

crates/storm-sim/src/lib.rs:
crates/storm-sim/src/engine.rs:
crates/storm-sim/src/queue.rs:
crates/storm-sim/src/rng.rs:
crates/storm-sim/src/stats.rs:
crates/storm-sim/src/time.rs:
crates/storm-sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
