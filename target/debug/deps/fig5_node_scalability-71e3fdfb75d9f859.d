/root/repo/target/debug/deps/fig5_node_scalability-71e3fdfb75d9f859.d: crates/storm-bench/benches/fig5_node_scalability.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_node_scalability-71e3fdfb75d9f859.rmeta: crates/storm-bench/benches/fig5_node_scalability.rs Cargo.toml

crates/storm-bench/benches/fig5_node_scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
