/root/repo/target/debug/examples/fault_detection-eae176fd803a7e3f.d: examples/fault_detection.rs Cargo.toml

/root/repo/target/debug/examples/libfault_detection-eae176fd803a7e3f.rmeta: examples/fault_detection.rs Cargo.toml

examples/fault_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
