/root/repo/target/debug/examples/quickstart-3dc0717b67733dce.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-3dc0717b67733dce.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
