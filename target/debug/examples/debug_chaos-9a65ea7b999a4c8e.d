/root/repo/target/debug/examples/debug_chaos-9a65ea7b999a4c8e.d: examples/debug_chaos.rs

/root/repo/target/debug/examples/debug_chaos-9a65ea7b999a4c8e: examples/debug_chaos.rs

examples/debug_chaos.rs:
