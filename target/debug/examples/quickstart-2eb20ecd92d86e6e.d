/root/repo/target/debug/examples/quickstart-2eb20ecd92d86e6e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2eb20ecd92d86e6e: examples/quickstart.rs

examples/quickstart.rs:
