/root/repo/target/debug/examples/cluster_monitoring-6f2ce3b71237c919.d: examples/cluster_monitoring.rs

/root/repo/target/debug/examples/cluster_monitoring-6f2ce3b71237c919: examples/cluster_monitoring.rs

examples/cluster_monitoring.rs:
