/root/repo/target/debug/examples/fault_detection-3ea4d0e44cba53cb.d: examples/fault_detection.rs

/root/repo/target/debug/examples/fault_detection-3ea4d0e44cba53cb: examples/fault_detection.rs

examples/fault_detection.rs:
