/root/repo/target/debug/examples/interactive_cluster-96cb0b4226358de5.d: examples/interactive_cluster.rs

/root/repo/target/debug/examples/interactive_cluster-96cb0b4226358de5: examples/interactive_cluster.rs

examples/interactive_cluster.rs:
