/root/repo/target/debug/examples/launcher_shootout-bea09a53d9e2d036.d: examples/launcher_shootout.rs

/root/repo/target/debug/examples/launcher_shootout-bea09a53d9e2d036: examples/launcher_shootout.rs

examples/launcher_shootout.rs:
