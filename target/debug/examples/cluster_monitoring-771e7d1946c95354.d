/root/repo/target/debug/examples/cluster_monitoring-771e7d1946c95354.d: examples/cluster_monitoring.rs Cargo.toml

/root/repo/target/debug/examples/libcluster_monitoring-771e7d1946c95354.rmeta: examples/cluster_monitoring.rs Cargo.toml

examples/cluster_monitoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
