/root/repo/target/debug/examples/batch_vs_backfill-1d94e9f606d9cc08.d: examples/batch_vs_backfill.rs

/root/repo/target/debug/examples/batch_vs_backfill-1d94e9f606d9cc08: examples/batch_vs_backfill.rs

examples/batch_vs_backfill.rs:
