/root/repo/target/debug/examples/interactive_cluster-b0cd6f8c64d7f507.d: examples/interactive_cluster.rs Cargo.toml

/root/repo/target/debug/examples/libinteractive_cluster-b0cd6f8c64d7f507.rmeta: examples/interactive_cluster.rs Cargo.toml

examples/interactive_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
