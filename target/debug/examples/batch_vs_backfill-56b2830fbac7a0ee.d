/root/repo/target/debug/examples/batch_vs_backfill-56b2830fbac7a0ee.d: examples/batch_vs_backfill.rs Cargo.toml

/root/repo/target/debug/examples/libbatch_vs_backfill-56b2830fbac7a0ee.rmeta: examples/batch_vs_backfill.rs Cargo.toml

examples/batch_vs_backfill.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
