/root/repo/target/debug/examples/launcher_shootout-76980362ee57bf50.d: examples/launcher_shootout.rs Cargo.toml

/root/repo/target/debug/examples/liblauncher_shootout-76980362ee57bf50.rmeta: examples/launcher_shootout.rs Cargo.toml

examples/launcher_shootout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
