/root/repo/target/release/deps/engine_properties-7796e469d05761ce.d: crates/storm-sim/tests/engine_properties.rs

/root/repo/target/release/deps/engine_properties-7796e469d05761ce: crates/storm-sim/tests/engine_properties.rs

crates/storm-sim/tests/engine_properties.rs:
