/root/repo/target/release/deps/rand-723edd1c244daafd.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-723edd1c244daafd.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-723edd1c244daafd.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
