/root/repo/target/release/deps/gang_scheduling-bf6c12ef09445aca.d: tests/gang_scheduling.rs

/root/repo/target/release/deps/gang_scheduling-bf6c12ef09445aca: tests/gang_scheduling.rs

tests/gang_scheduling.rs:
