/root/repo/target/release/deps/storm_baselines-5bce248b107078a0.d: crates/storm-baselines/src/lib.rs crates/storm-baselines/src/launch.rs crates/storm-baselines/src/sched.rs

/root/repo/target/release/deps/storm_baselines-5bce248b107078a0: crates/storm-baselines/src/lib.rs crates/storm-baselines/src/launch.rs crates/storm-baselines/src/sched.rs

crates/storm-baselines/src/lib.rs:
crates/storm-baselines/src/launch.rs:
crates/storm-baselines/src/sched.rs:
