/root/repo/target/release/deps/chaos-3c86ad48a58af01f.d: tests/chaos.rs

/root/repo/target/release/deps/chaos-3c86ad48a58af01f: tests/chaos.rs

tests/chaos.rs:
