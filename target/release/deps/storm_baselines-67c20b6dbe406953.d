/root/repo/target/release/deps/storm_baselines-67c20b6dbe406953.d: crates/storm-baselines/src/lib.rs crates/storm-baselines/src/launch.rs crates/storm-baselines/src/sched.rs

/root/repo/target/release/deps/libstorm_baselines-67c20b6dbe406953.rlib: crates/storm-baselines/src/lib.rs crates/storm-baselines/src/launch.rs crates/storm-baselines/src/sched.rs

/root/repo/target/release/deps/libstorm_baselines-67c20b6dbe406953.rmeta: crates/storm-baselines/src/lib.rs crates/storm-baselines/src/launch.rs crates/storm-baselines/src/sched.rs

crates/storm-baselines/src/lib.rs:
crates/storm-baselines/src/launch.rs:
crates/storm-baselines/src/sched.rs:
