/root/repo/target/release/deps/storm_bench-b97f98a0ae205f8d.d: crates/storm-bench/src/lib.rs

/root/repo/target/release/deps/libstorm_bench-b97f98a0ae205f8d.rlib: crates/storm-bench/src/lib.rs

/root/repo/target/release/deps/libstorm_bench-b97f98a0ae205f8d.rmeta: crates/storm-bench/src/lib.rs

crates/storm-bench/src/lib.rs:
