/root/repo/target/release/deps/storm-d4e23cabb5e7bb5a.d: src/lib.rs

/root/repo/target/release/deps/storm-d4e23cabb5e7bb5a: src/lib.rs

src/lib.rs:
