/root/repo/target/release/deps/storm_core-ae97be1626d602e0.d: crates/storm-core/src/lib.rs crates/storm-core/src/buddy.rs crates/storm-core/src/cluster.rs crates/storm-core/src/config.rs crates/storm-core/src/fault.rs crates/storm-core/src/job.rs crates/storm-core/src/matrix.rs crates/storm-core/src/mm.rs crates/storm-core/src/msg.rs crates/storm-core/src/nm.rs crates/storm-core/src/pl.rs crates/storm-core/src/policy.rs crates/storm-core/src/world.rs

/root/repo/target/release/deps/libstorm_core-ae97be1626d602e0.rlib: crates/storm-core/src/lib.rs crates/storm-core/src/buddy.rs crates/storm-core/src/cluster.rs crates/storm-core/src/config.rs crates/storm-core/src/fault.rs crates/storm-core/src/job.rs crates/storm-core/src/matrix.rs crates/storm-core/src/mm.rs crates/storm-core/src/msg.rs crates/storm-core/src/nm.rs crates/storm-core/src/pl.rs crates/storm-core/src/policy.rs crates/storm-core/src/world.rs

/root/repo/target/release/deps/libstorm_core-ae97be1626d602e0.rmeta: crates/storm-core/src/lib.rs crates/storm-core/src/buddy.rs crates/storm-core/src/cluster.rs crates/storm-core/src/config.rs crates/storm-core/src/fault.rs crates/storm-core/src/job.rs crates/storm-core/src/matrix.rs crates/storm-core/src/mm.rs crates/storm-core/src/msg.rs crates/storm-core/src/nm.rs crates/storm-core/src/pl.rs crates/storm-core/src/policy.rs crates/storm-core/src/world.rs

crates/storm-core/src/lib.rs:
crates/storm-core/src/buddy.rs:
crates/storm-core/src/cluster.rs:
crates/storm-core/src/config.rs:
crates/storm-core/src/fault.rs:
crates/storm-core/src/job.rs:
crates/storm-core/src/matrix.rs:
crates/storm-core/src/mm.rs:
crates/storm-core/src/msg.rs:
crates/storm-core/src/nm.rs:
crates/storm-core/src/pl.rs:
crates/storm-core/src/policy.rs:
crates/storm-core/src/world.rs:
