/root/repo/target/release/deps/storm_core-2c79029de101450f.d: crates/storm-core/src/lib.rs crates/storm-core/src/buddy.rs crates/storm-core/src/cluster.rs crates/storm-core/src/config.rs crates/storm-core/src/fault.rs crates/storm-core/src/job.rs crates/storm-core/src/matrix.rs crates/storm-core/src/mm.rs crates/storm-core/src/msg.rs crates/storm-core/src/nm.rs crates/storm-core/src/pl.rs crates/storm-core/src/policy.rs crates/storm-core/src/world.rs

/root/repo/target/release/deps/storm_core-2c79029de101450f: crates/storm-core/src/lib.rs crates/storm-core/src/buddy.rs crates/storm-core/src/cluster.rs crates/storm-core/src/config.rs crates/storm-core/src/fault.rs crates/storm-core/src/job.rs crates/storm-core/src/matrix.rs crates/storm-core/src/mm.rs crates/storm-core/src/msg.rs crates/storm-core/src/nm.rs crates/storm-core/src/pl.rs crates/storm-core/src/policy.rs crates/storm-core/src/world.rs

crates/storm-core/src/lib.rs:
crates/storm-core/src/buddy.rs:
crates/storm-core/src/cluster.rs:
crates/storm-core/src/config.rs:
crates/storm-core/src/fault.rs:
crates/storm-core/src/job.rs:
crates/storm-core/src/matrix.rs:
crates/storm-core/src/mm.rs:
crates/storm-core/src/msg.rs:
crates/storm-core/src/nm.rs:
crates/storm-core/src/pl.rs:
crates/storm-core/src/policy.rs:
crates/storm-core/src/world.rs:
