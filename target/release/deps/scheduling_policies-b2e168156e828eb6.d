/root/repo/target/release/deps/scheduling_policies-b2e168156e828eb6.d: tests/scheduling_policies.rs

/root/repo/target/release/deps/scheduling_policies-b2e168156e828eb6: tests/scheduling_policies.rs

tests/scheduling_policies.rs:
