/root/repo/target/release/deps/storm_cli-a3a64098192edc46.d: src/bin/storm-cli.rs

/root/repo/target/release/deps/storm_cli-a3a64098192edc46: src/bin/storm-cli.rs

src/bin/storm-cli.rs:
