/root/repo/target/release/deps/storm_net-a54d753fc44a4a1e.d: crates/storm-net/src/lib.rs crates/storm-net/src/contention.rs crates/storm-net/src/networks.rs crates/storm-net/src/qsnet.rs crates/storm-net/src/topology.rs

/root/repo/target/release/deps/storm_net-a54d753fc44a4a1e: crates/storm-net/src/lib.rs crates/storm-net/src/contention.rs crates/storm-net/src/networks.rs crates/storm-net/src/qsnet.rs crates/storm-net/src/topology.rs

crates/storm-net/src/lib.rs:
crates/storm-net/src/contention.rs:
crates/storm-net/src/networks.rs:
crates/storm-net/src/qsnet.rs:
crates/storm-net/src/topology.rs:
