/root/repo/target/release/deps/mech_properties-8ea3ebd23b3023be.d: crates/storm-mech/tests/mech_properties.rs

/root/repo/target/release/deps/mech_properties-8ea3ebd23b3023be: crates/storm-mech/tests/mech_properties.rs

crates/storm-mech/tests/mech_properties.rs:
