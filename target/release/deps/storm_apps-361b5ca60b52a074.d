/root/repo/target/release/deps/storm_apps-361b5ca60b52a074.d: crates/storm-apps/src/lib.rs crates/storm-apps/src/spec.rs crates/storm-apps/src/stream.rs crates/storm-apps/src/workload.rs

/root/repo/target/release/deps/storm_apps-361b5ca60b52a074: crates/storm-apps/src/lib.rs crates/storm-apps/src/spec.rs crates/storm-apps/src/stream.rs crates/storm-apps/src/workload.rs

crates/storm-apps/src/lib.rs:
crates/storm-apps/src/spec.rs:
crates/storm-apps/src/stream.rs:
crates/storm-apps/src/workload.rs:
