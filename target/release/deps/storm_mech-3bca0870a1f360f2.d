/root/repo/target/release/deps/storm_mech-3bca0870a1f360f2.d: crates/storm-mech/src/lib.rs crates/storm-mech/src/mech.rs crates/storm-mech/src/memory.rs crates/storm-mech/src/types.rs

/root/repo/target/release/deps/storm_mech-3bca0870a1f360f2: crates/storm-mech/src/lib.rs crates/storm-mech/src/mech.rs crates/storm-mech/src/memory.rs crates/storm-mech/src/types.rs

crates/storm-mech/src/lib.rs:
crates/storm-mech/src/mech.rs:
crates/storm-mech/src/memory.rs:
crates/storm-mech/src/types.rs:
