/root/repo/target/release/deps/storm_sim-1bd43e6db9a744b6.d: crates/storm-sim/src/lib.rs crates/storm-sim/src/engine.rs crates/storm-sim/src/queue.rs crates/storm-sim/src/rng.rs crates/storm-sim/src/stats.rs crates/storm-sim/src/time.rs crates/storm-sim/src/trace.rs

/root/repo/target/release/deps/storm_sim-1bd43e6db9a744b6: crates/storm-sim/src/lib.rs crates/storm-sim/src/engine.rs crates/storm-sim/src/queue.rs crates/storm-sim/src/rng.rs crates/storm-sim/src/stats.rs crates/storm-sim/src/time.rs crates/storm-sim/src/trace.rs

crates/storm-sim/src/lib.rs:
crates/storm-sim/src/engine.rs:
crates/storm-sim/src/queue.rs:
crates/storm-sim/src/rng.rs:
crates/storm-sim/src/stats.rs:
crates/storm-sim/src/time.rs:
crates/storm-sim/src/trace.rs:
