/root/repo/target/release/deps/storm-7179816b1130aaac.d: src/lib.rs

/root/repo/target/release/deps/libstorm-7179816b1130aaac.rlib: src/lib.rs

/root/repo/target/release/deps/libstorm-7179816b1130aaac.rmeta: src/lib.rs

src/lib.rs:
