/root/repo/target/release/deps/storm_fs-f7d9f36b49087cbc.d: crates/storm-fs/src/lib.rs

/root/repo/target/release/deps/libstorm_fs-f7d9f36b49087cbc.rlib: crates/storm-fs/src/lib.rs

/root/repo/target/release/deps/libstorm_fs-f7d9f36b49087cbc.rmeta: crates/storm-fs/src/lib.rs

crates/storm-fs/src/lib.rs:
