/root/repo/target/release/deps/storm_apps-4cc7b78f5237d8d5.d: crates/storm-apps/src/lib.rs crates/storm-apps/src/spec.rs crates/storm-apps/src/stream.rs crates/storm-apps/src/workload.rs

/root/repo/target/release/deps/libstorm_apps-4cc7b78f5237d8d5.rlib: crates/storm-apps/src/lib.rs crates/storm-apps/src/spec.rs crates/storm-apps/src/stream.rs crates/storm-apps/src/workload.rs

/root/repo/target/release/deps/libstorm_apps-4cc7b78f5237d8d5.rmeta: crates/storm-apps/src/lib.rs crates/storm-apps/src/spec.rs crates/storm-apps/src/stream.rs crates/storm-apps/src/workload.rs

crates/storm-apps/src/lib.rs:
crates/storm-apps/src/spec.rs:
crates/storm-apps/src/stream.rs:
crates/storm-apps/src/workload.rs:
