/root/repo/target/release/deps/rand-2546884afd4118b3.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/rand-2546884afd4118b3: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
