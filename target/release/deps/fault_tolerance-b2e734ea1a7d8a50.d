/root/repo/target/release/deps/fault_tolerance-b2e734ea1a7d8a50.d: tests/fault_tolerance.rs

/root/repo/target/release/deps/fault_tolerance-b2e734ea1a7d8a50: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
