/root/repo/target/release/deps/storm_fs-b9d265c67eba5094.d: crates/storm-fs/src/lib.rs

/root/repo/target/release/deps/storm_fs-b9d265c67eba5094: crates/storm-fs/src/lib.rs

crates/storm-fs/src/lib.rs:
