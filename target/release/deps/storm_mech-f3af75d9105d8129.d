/root/repo/target/release/deps/storm_mech-f3af75d9105d8129.d: crates/storm-mech/src/lib.rs crates/storm-mech/src/mech.rs crates/storm-mech/src/memory.rs crates/storm-mech/src/types.rs

/root/repo/target/release/deps/libstorm_mech-f3af75d9105d8129.rlib: crates/storm-mech/src/lib.rs crates/storm-mech/src/mech.rs crates/storm-mech/src/memory.rs crates/storm-mech/src/types.rs

/root/repo/target/release/deps/libstorm_mech-f3af75d9105d8129.rmeta: crates/storm-mech/src/lib.rs crates/storm-mech/src/mech.rs crates/storm-mech/src/memory.rs crates/storm-mech/src/types.rs

crates/storm-mech/src/lib.rs:
crates/storm-mech/src/mech.rs:
crates/storm-mech/src/memory.rs:
crates/storm-mech/src/types.rs:
