/root/repo/target/release/deps/storm_cli-e911c0d7d976616d.d: src/bin/storm-cli.rs

/root/repo/target/release/deps/storm_cli-e911c0d7d976616d: src/bin/storm-cli.rs

src/bin/storm-cli.rs:
