/root/repo/target/release/deps/launch_experiments-712cb2483512f7cc.d: tests/launch_experiments.rs

/root/repo/target/release/deps/launch_experiments-712cb2483512f7cc: tests/launch_experiments.rs

tests/launch_experiments.rs:
