/root/repo/target/release/deps/properties-73594bec6c84370a.d: tests/properties.rs

/root/repo/target/release/deps/properties-73594bec6c84370a: tests/properties.rs

tests/properties.rs:
