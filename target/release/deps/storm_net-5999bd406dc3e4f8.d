/root/repo/target/release/deps/storm_net-5999bd406dc3e4f8.d: crates/storm-net/src/lib.rs crates/storm-net/src/contention.rs crates/storm-net/src/networks.rs crates/storm-net/src/qsnet.rs crates/storm-net/src/topology.rs

/root/repo/target/release/deps/libstorm_net-5999bd406dc3e4f8.rlib: crates/storm-net/src/lib.rs crates/storm-net/src/contention.rs crates/storm-net/src/networks.rs crates/storm-net/src/qsnet.rs crates/storm-net/src/topology.rs

/root/repo/target/release/deps/libstorm_net-5999bd406dc3e4f8.rmeta: crates/storm-net/src/lib.rs crates/storm-net/src/contention.rs crates/storm-net/src/networks.rs crates/storm-net/src/qsnet.rs crates/storm-net/src/topology.rs

crates/storm-net/src/lib.rs:
crates/storm-net/src/contention.rs:
crates/storm-net/src/networks.rs:
crates/storm-net/src/qsnet.rs:
crates/storm-net/src/topology.rs:
