/root/repo/target/release/deps/storm_model-7be5154d92222b19.d: crates/storm-model/src/lib.rs

/root/repo/target/release/deps/libstorm_model-7be5154d92222b19.rlib: crates/storm-model/src/lib.rs

/root/repo/target/release/deps/libstorm_model-7be5154d92222b19.rmeta: crates/storm-model/src/lib.rs

crates/storm-model/src/lib.rs:
