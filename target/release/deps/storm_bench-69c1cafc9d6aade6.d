/root/repo/target/release/deps/storm_bench-69c1cafc9d6aade6.d: crates/storm-bench/src/lib.rs

/root/repo/target/release/deps/storm_bench-69c1cafc9d6aade6: crates/storm-bench/src/lib.rs

crates/storm-bench/src/lib.rs:
