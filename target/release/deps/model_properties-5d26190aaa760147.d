/root/repo/target/release/deps/model_properties-5d26190aaa760147.d: crates/storm-net/tests/model_properties.rs

/root/repo/target/release/deps/model_properties-5d26190aaa760147: crates/storm-net/tests/model_properties.rs

crates/storm-net/tests/model_properties.rs:
