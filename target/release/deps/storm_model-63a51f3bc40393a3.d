/root/repo/target/release/deps/storm_model-63a51f3bc40393a3.d: crates/storm-model/src/lib.rs

/root/repo/target/release/deps/storm_model-63a51f3bc40393a3: crates/storm-model/src/lib.rs

crates/storm-model/src/lib.rs:
