/root/repo/target/release/deps/chaos_recovery-8de4c552377d2a09.d: crates/storm-bench/benches/chaos_recovery.rs

/root/repo/target/release/deps/chaos_recovery-8de4c552377d2a09: crates/storm-bench/benches/chaos_recovery.rs

crates/storm-bench/benches/chaos_recovery.rs:
