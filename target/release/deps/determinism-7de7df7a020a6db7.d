/root/repo/target/release/deps/determinism-7de7df7a020a6db7.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-7de7df7a020a6db7: tests/determinism.rs

tests/determinism.rs:
