/root/repo/target/release/deps/workload_properties-09c472533a4d89bb.d: crates/storm-apps/tests/workload_properties.rs

/root/repo/target/release/deps/workload_properties-09c472533a4d89bb: crates/storm-apps/tests/workload_properties.rs

crates/storm-apps/tests/workload_properties.rs:
