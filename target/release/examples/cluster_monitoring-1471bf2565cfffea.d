/root/repo/target/release/examples/cluster_monitoring-1471bf2565cfffea.d: examples/cluster_monitoring.rs

/root/repo/target/release/examples/cluster_monitoring-1471bf2565cfffea: examples/cluster_monitoring.rs

examples/cluster_monitoring.rs:
