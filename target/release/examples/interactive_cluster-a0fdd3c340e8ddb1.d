/root/repo/target/release/examples/interactive_cluster-a0fdd3c340e8ddb1.d: examples/interactive_cluster.rs

/root/repo/target/release/examples/interactive_cluster-a0fdd3c340e8ddb1: examples/interactive_cluster.rs

examples/interactive_cluster.rs:
