/root/repo/target/release/examples/quickstart-0ea1b91e955786f4.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-0ea1b91e955786f4: examples/quickstart.rs

examples/quickstart.rs:
