/root/repo/target/release/examples/launcher_shootout-c6fcb8d102d47eaa.d: examples/launcher_shootout.rs

/root/repo/target/release/examples/launcher_shootout-c6fcb8d102d47eaa: examples/launcher_shootout.rs

examples/launcher_shootout.rs:
