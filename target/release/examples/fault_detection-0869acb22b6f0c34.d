/root/repo/target/release/examples/fault_detection-0869acb22b6f0c34.d: examples/fault_detection.rs

/root/repo/target/release/examples/fault_detection-0869acb22b6f0c34: examples/fault_detection.rs

examples/fault_detection.rs:
