/root/repo/target/release/examples/scratch_probe-81db57b779cb48a3.d: examples/scratch_probe.rs

/root/repo/target/release/examples/scratch_probe-81db57b779cb48a3: examples/scratch_probe.rs

examples/scratch_probe.rs:
