/root/repo/target/release/examples/batch_vs_backfill-c93b35a7ddd56e08.d: examples/batch_vs_backfill.rs

/root/repo/target/release/examples/batch_vs_backfill-c93b35a7ddd56e08: examples/batch_vs_backfill.rs

examples/batch_vs_backfill.rs:
