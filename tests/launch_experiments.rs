//! End-to-end launch-protocol integration tests: the §3.1 experiments in
//! miniature, checked against the paper's stated anchors.

use storm::core::prelude::*;

fn launch(cfg: ClusterConfig, pes: u32, mb: u64) -> (f64, f64, f64) {
    let mut c = Cluster::new(cfg);
    let j = c.submit(JobSpec::new(AppSpec::do_nothing_mb(mb), pes));
    c.run_until_idle();
    let m = &c.job(j).metrics;
    (
        m.send_span().unwrap().as_millis_f64(),
        m.execute_span().unwrap().as_millis_f64(),
        m.total_launch_span().unwrap().as_millis_f64(),
    )
}

#[test]
fn headline_110ms_launch() {
    let (send, _exec, total) = launch(ClusterConfig::paper_cluster(), 256, 12);
    assert!(
        (send - 96.0).abs() < 8.0,
        "send {send:.1} ms vs paper 96 ms"
    );
    assert!(
        (total - 110.0).abs() < 12.0,
        "total {total:.1} ms vs paper 110 ms"
    );
}

#[test]
fn protocol_bandwidth_is_about_131_mb_s() {
    let (send, _, _) = launch(ClusterConfig::paper_cluster(), 256, 12);
    let bw = 12_000.0 / send; // MB/s
    assert!((bw - 131.0).abs() < 12.0, "protocol bandwidth {bw:.1} MB/s");
}

#[test]
fn send_time_scales_with_binary_size_not_node_count() {
    let mut by_size = Vec::new();
    for mb in [4u64, 8, 12] {
        by_size.push(launch(ClusterConfig::paper_cluster(), 256, mb).0);
    }
    assert!(by_size[0] < by_size[1] && by_size[1] < by_size[2]);
    let r = by_size[2] / by_size[0];
    assert!((2.2..3.8).contains(&r), "12/4 MB send ratio {r:.2}");

    let small_cluster = launch(ClusterConfig::paper_cluster().with_nodes(2), 8, 12).0;
    let big_cluster = launch(ClusterConfig::paper_cluster(), 256, 12).0;
    assert!(
        big_cluster / small_cluster < 1.25,
        "send nearly node-count independent: {small_cluster:.1} -> {big_cluster:.1}"
    );
}

#[test]
fn loaded_launch_ordering_matches_fig3() {
    let unloaded = launch(ClusterConfig::paper_cluster(), 256, 12).2;
    let cpu = launch(
        ClusterConfig::paper_cluster().with_load(BackgroundLoad::cpu_loaded()),
        256,
        12,
    )
    .2;
    let net = launch(
        ClusterConfig::paper_cluster().with_load(BackgroundLoad::network_loaded()),
        256,
        12,
    )
    .2;
    assert!(unloaded < cpu, "{unloaded:.0} < {cpu:.0}");
    assert!(cpu < net, "{cpu:.0} < {net:.0}");
    assert!(
        (1000.0..2000.0).contains(&net),
        "worst case ~1.5 s: {net:.0} ms"
    );
}

#[test]
fn best_transfer_protocol_is_512kb_4slots() {
    let send_for = |chunk_kb: u64, slots: u32| {
        launch(
            ClusterConfig::paper_cluster().with_transfer_protocol(chunk_kb * 1024, slots),
            256,
            12,
        )
        .0
    };
    let best = send_for(512, 4);
    assert!(send_for(32, 4) > best * 1.2, "32 KB chunks pay overhead");
    assert!(send_for(512, 16) >= best, "16 slots pay NIC TLB misses");
    assert!(send_for(1024, 4) >= best * 0.99, "1 MB chunks no better");
}

#[test]
fn fragments_cover_binary_exactly() {
    let mut c = Cluster::new(ClusterConfig::paper_cluster());
    let j = c.submit(JobSpec::new(AppSpec::do_nothing_mb(12), 64));
    c.run_until_idle();
    let t = &c.job(j).transfer;
    let chunk = c.world().cfg.chunk_bytes;
    let total_bytes =
        u64::from(t.total_chunks - 1) * chunk + t.chunk_bytes(t.total_chunks - 1, chunk);
    assert_eq!(total_bytes, 12_000_000);
    assert_eq!(c.world().stats.fragments, u64::from(t.total_chunks));
}

#[test]
fn flow_control_never_overruns_the_receive_queue() {
    // With only 2 slots and very noisy writes, the transfer still
    // completes and the per-node written counters reach the chunk count.
    let mut cfg = ClusterConfig::paper_cluster().with_transfer_protocol(256 * 1024, 2);
    cfg.daemon.write_sigma = 0.6;
    let mut c = Cluster::new(cfg);
    let j = c.submit(JobSpec::new(AppSpec::do_nothing_mb(8), 256));
    c.run_until_idle();
    assert_eq!(c.job(j).state, JobState::Completed);
    assert!(
        c.world().stats.flow_stalls > 0,
        "noisy writes must actually exercise the COMPARE-AND-WRITE stalls"
    );
}

#[test]
fn nfs_source_slows_launch_like_fig6_predicts() {
    let mut nfs_cfg = ClusterConfig::paper_cluster();
    nfs_cfg.fs = storm::fs::FsKind::Nfs;
    let ram = launch(ClusterConfig::paper_cluster(), 64, 12).0;
    let nfs = launch(nfs_cfg, 64, 12).0;
    // Read stage at 11.2 MB/s becomes the pipeline bottleneck:
    // 12 MB / 11.2 MB/s ≈ 1.07 s.
    assert!(nfs > 5.0 * ram, "NFS {nfs:.0} ms vs RAM disk {ram:.0} ms");
    assert!((nfs - 1070.0).abs() < 200.0, "NFS-bound send {nfs:.0} ms");
}

#[test]
fn launch_works_on_every_cluster_size() {
    for nodes in [1u32, 2, 3, 5, 8, 17, 48, 64] {
        let (send, _, total) = launch(
            ClusterConfig::paper_cluster().with_nodes(nodes),
            nodes, // 1 rank per node
            4,
        );
        assert!(
            send > 0.0 && total > send,
            "{nodes} nodes: send {send}, total {total}"
        );
    }
}
