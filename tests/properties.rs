//! Cross-crate property-based tests (proptest): invariants that must hold
//! for *arbitrary* configurations and job streams, not just the paper's.

use proptest::prelude::*;
use storm::core::prelude::*;
use storm::core::{BuddyAllocator, GangMatrix};
use storm::mech::{NodeId, NodeSet};
use storm::sim::{ComponentId, GroupTargets};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any launchable job completes, its fragments cover the binary
    /// exactly, and the metric timeline is ordered.
    #[test]
    fn launch_completes_with_ordered_timeline(
        nodes in 1u32..=64,
        mb in 1u64..=16,
        seed in 0u64..1_000,
        chunk_kb in prop::sample::select(vec![64u64, 128, 256, 512, 1024]),
        slots in 2u32..=8,
    ) {
        let ranks = nodes; // 1 rank/node keeps every size feasible
        let cfg = ClusterConfig::paper_cluster()
            .with_nodes(nodes)
            .with_transfer_protocol(chunk_kb * 1024, slots)
            .with_seed(seed);
        let mut c = Cluster::new(cfg);
        let j = c.submit(JobSpec::new(AppSpec::do_nothing_mb(mb), ranks));
        c.run_until_idle();
        let rec = c.job(j);
        prop_assert_eq!(rec.state, JobState::Completed);
        let m = &rec.metrics;
        let seq = [
            m.submitted.unwrap(),
            m.transfer_start.unwrap(),
            m.transfer_done.unwrap(),
            m.launch_cmd.unwrap(),
            m.completed.unwrap(),
        ];
        prop_assert!(seq.windows(2).all(|w| w[0] <= w[1]), "timeline {seq:?}");
        // Byte conservation across the chunking.
        let t = &rec.transfer;
        let chunk = c.world().cfg.chunk_bytes;
        let covered = u64::from(t.total_chunks - 1) * chunk
            + t.chunk_bytes(t.total_chunks - 1, chunk);
        prop_assert_eq!(covered, mb * 1_000_000);
        prop_assert_eq!(c.world().stats.fragments, u64::from(t.total_chunks));
    }

    /// The buddy allocator never double-allocates, never loses nodes, and
    /// its free count is exact under arbitrary alloc/free interleavings.
    #[test]
    fn buddy_is_exact_under_arbitrary_interleavings(
        total_log in 1u32..=8,
        ops in prop::collection::vec((0u8..=1, 0u32..=8), 1..200),
    ) {
        let total = 1u32 << total_log;
        let mut buddy = BuddyAllocator::new(total);
        let mut live: Vec<std::ops::Range<u32>> = Vec::new();
        for (op, arg) in ops {
            if op == 0 {
                let want = (1u32 << (arg % 6)).min(total);
                if let Some(r) = buddy.alloc(want) {
                    for l in &live {
                        prop_assert!(r.end <= l.start || l.end <= r.start,
                            "overlap {r:?} vs {l:?}");
                    }
                    prop_assert!(r.end <= total);
                    live.push(r);
                }
            } else if !live.is_empty() {
                let idx = (arg as usize) % live.len();
                let r = live.swap_remove(idx);
                buddy.free(r.start);
            }
            let live_total: u32 = live.iter().map(|r| r.len() as u32).sum();
            prop_assert_eq!(buddy.free_nodes(), total - live_total);
        }
    }

    /// Send time is monotone (within noise) in binary size for any cluster
    /// size — the Fig. 2 proportionality, generalised.
    #[test]
    fn send_time_monotone_in_binary_size(
        nodes in prop::sample::select(vec![2u32, 8, 32, 64]),
        seed in 0u64..100,
    ) {
        let send = |mb: u64| {
            let mut c = Cluster::new(
                ClusterConfig::paper_cluster().with_nodes(nodes).with_seed(seed),
            );
            let j = c.submit(JobSpec::new(AppSpec::do_nothing_mb(mb), nodes));
            c.run_until_idle();
            c.job(j).metrics.send_span().unwrap().as_millis_f64()
        };
        let (a, b, c_) = (send(2), send(6), send(12));
        prop_assert!(a < b && b < c_, "sends {a:.1} {b:.1} {c_:.1}");
    }

    /// Under any feasible quantum, a gang-scheduled job's measured runtime
    /// never beats its intrinsic workload span, and overhead stays small.
    #[test]
    fn gang_overhead_is_bounded(
        quantum_ms in prop::sample::select(vec![1u64, 2, 10, 50, 200]),
        secs in 1u64..=6,
        nodes in prop::sample::select(vec![2u32, 8, 16]),
        seed in 0u64..100,
    ) {
        let cfg = ClusterConfig::gang_cluster()
            .with_nodes(nodes)
            .with_timeslice(SimSpan::from_millis(quantum_ms))
            .with_seed(seed);
        let mut c = Cluster::new(cfg);
        let j = c.submit(
            JobSpec::new(
                AppSpec::Synthetic { compute: SimSpan::from_secs(secs) },
                nodes * 2,
            )
            .with_ranks_per_node(2),
        );
        c.run_until_idle();
        let turnaround = c.job(j).metrics.turnaround().unwrap().as_secs_f64();
        let work = secs as f64;
        prop_assert!(turnaround >= work, "cannot finish faster than the work");
        prop_assert!(
            turnaround < work * 1.15 + 1.0,
            "overhead bounded: {turnaround:.2} s for {work} s of work"
        );
    }

    /// Quarantine/rejoin invariants (S4): `alloc` never returns a
    /// quarantined node, free-node accounting stays exact while nodes are
    /// out, and capacity after every quarantined node rejoins equals the
    /// capacity before the failures.
    #[test]
    fn buddy_never_allocates_quarantined_nodes(
        total_log in 1u32..=8,
        ops in prop::collection::vec((0u8..=3, 0u32..=255), 1..200),
    ) {
        let total = 1u32 << total_log;
        let mut buddy = BuddyAllocator::new(total);
        let capacity_before = buddy.free_nodes();
        let mut live: Vec<std::ops::Range<u32>> = Vec::new();
        let mut out: Vec<u32> = Vec::new();
        for (op, arg) in ops {
            match op {
                0 => {
                    let want = (1u32 << (arg % 6)).min(total);
                    if let Some(r) = buddy.alloc(want) {
                        for q in &out {
                            prop_assert!(!r.contains(q),
                                "alloc {r:?} returned quarantined node {q}");
                        }
                        live.push(r);
                    }
                }
                1 => {
                    if !live.is_empty() {
                        let idx = (arg as usize) % live.len();
                        let r = live.swap_remove(idx);
                        buddy.free(r.start);
                    }
                }
                2 => {
                    let node = arg % total;
                    if buddy.quarantine(node) {
                        out.push(node);
                    }
                }
                _ => {
                    if !out.is_empty() {
                        let idx = (arg as usize) % out.len();
                        let node = out.swap_remove(idx);
                        prop_assert!(buddy.rejoin(node));
                    }
                }
            }
            let live_total: u32 = live.iter().map(|r| r.len() as u32).sum();
            prop_assert_eq!(
                buddy.free_nodes(),
                total - live_total - out.len() as u32,
                "free-node accounting with {} node(s) quarantined", out.len()
            );
        }
        // Drain everything: after all rejoins + frees, full capacity is back.
        for r in live.drain(..) {
            buddy.free(r.start);
        }
        for node in out.drain(..) {
            prop_assert!(buddy.rejoin(node));
        }
        prop_assert_eq!(buddy.free_nodes(), capacity_before);
        prop_assert!(buddy.alloc(total).is_some(), "full-width block re-forms");
    }

    /// The gang matrix honours quarantine across slots: after evicting
    /// victims and quarantining a node, no placement ever includes it, and
    /// rejoin restores full-machine placement.
    #[test]
    fn matrix_placements_avoid_quarantined_node(
        nodes_log in 2u32..=6,
        victim in 0u32..=63,
        sizes in prop::collection::vec(0u32..=4, 1..12),
    ) {
        let nodes = 1u32 << nodes_log;
        let victim = victim % nodes;
        let mut m = GangMatrix::new(nodes, 4);
        prop_assert!(m.quarantine_node(victim));
        let mut placed = Vec::new();
        for (i, s) in sizes.iter().enumerate() {
            let want = (1u32 << (s % 5)).min(nodes);
            if let Some((slot, range)) = m.place(JobId(i as u32), want) {
                prop_assert!(!range.contains(&victim),
                    "slot {slot} placement {range:?} includes quarantined {victim}");
                placed.push(JobId(i as u32));
            }
        }
        prop_assert!(!m.can_place(nodes), "full-width cannot fit minus one node");
        for j in placed {
            m.remove(j);
        }
        prop_assert!(m.rejoin_node(victim));
        prop_assert!(m.can_place(nodes), "full capacity restored after rejoin");
    }

    /// After every allocation is freed — in arbitrary order — the buddy
    /// tree must have coalesced all the way back: the free count equals the
    /// full capacity *and* a full-width block can be carved again, which
    /// only works if every split pair merged.
    #[test]
    fn buddy_coalesces_back_to_the_full_tree(
        total_log in 1u32..=8,
        sizes in prop::collection::vec(0u32..=6, 1..32),
        free_order in prop::collection::vec(0u32..=255, 32..33),
    ) {
        let total = 1u32 << total_log;
        let mut buddy = BuddyAllocator::new(total);
        let mut live: Vec<std::ops::Range<u32>> = Vec::new();
        for s in sizes {
            let want = (1u32 << (s % 6)).min(total);
            if let Some(r) = buddy.alloc(want) {
                live.push(r);
            }
        }
        for pick in free_order {
            if live.is_empty() {
                break;
            }
            let r = live.swap_remove(pick as usize % live.len());
            buddy.free(r.start);
        }
        for r in live.drain(..) {
            buddy.free(r.start);
        }
        prop_assert_eq!(buddy.free_nodes(), total);
        prop_assert_eq!(buddy.alloc(total), Some(0..total), "full block re-forms");
    }

    /// Degenerate requests are rejected without disturbing the tree: a
    /// zero-node request and any request wider than the machine both return
    /// `None` and leave the free count untouched — at any fill level.
    #[test]
    fn buddy_rejects_zero_and_oversized_requests(
        total_log in 0u32..=8,
        sizes in prop::collection::vec(0u32..=6, 0..8),
        over in 1u32..=1024,
    ) {
        let total = 1u32 << total_log;
        let mut buddy = BuddyAllocator::new(total);
        for s in sizes {
            let _ = buddy.alloc((1u32 << (s % 6)).min(total));
        }
        let before = buddy.free_nodes();
        prop_assert_eq!(buddy.alloc(0), None, "zero-node request");
        prop_assert_eq!(buddy.alloc(total + over), None, "oversized request");
        prop_assert_eq!(buddy.free_nodes(), before, "rejections are side-effect free");
    }

    /// The allocation-free `NodeSet` iterator must agree exactly with the
    /// naive expansion through `get(rank)` — for every variant, including
    /// the empty and single-node edges — and `len`/`contains` must tell
    /// the same story.
    #[test]
    fn node_set_iteration_matches_naive_expansion(
        variant in 0u8..=2,
        n in 0u32..=64,
        start in 0u32..=1000,
        raw in prop::collection::vec(0u32..=100, 0..32),
    ) {
        let set = match variant {
            0 => NodeSet::All(n),
            1 => NodeSet::Range { start, len: n },
            _ => NodeSet::from_list(raw.iter().map(|&i| NodeId(i)).collect()),
        };
        let naive: Vec<NodeId> = (0..set.len()).map(|rank| set.get(rank)).collect();
        let iterated: Vec<NodeId> = set.iter().collect();
        prop_assert_eq!(&iterated, &naive, "iterator vs get(rank) expansion");
        prop_assert_eq!(iterated.len(), set.len() as usize);
        prop_assert_eq!(set.is_empty(), iterated.is_empty());
        prop_assert!(
            iterated.windows(2).all(|w| w[0] < w[1]),
            "ascending, duplicate-free order"
        );
        for &node in &iterated {
            prop_assert!(set.contains(node), "iterated member {node:?} not contained");
        }
        // Probe a few non-members too: contains must not over-approximate.
        for probe in 0..=1101 {
            let node = NodeId(probe);
            prop_assert_eq!(
                set.contains(node),
                naive.contains(&node),
                "contains({probe}) disagrees with the expansion"
            );
        }
    }

    /// `GroupTargets::get` must enumerate exactly the arithmetic
    /// progression (strided) or the backing list, for every rank — the
    /// engine delivers group messages by ranked lookup, so an off-by-one
    /// here would misroute a fan-out. Empty and single-recipient edges
    /// included.
    #[test]
    fn group_targets_ranked_lookup_matches_naive_expansion(
        first in 0u32..=1000,
        stride in 0u32..=64,
        len in 0u32..=64,
        raw in prop::collection::vec(0u32..=10_000, 0..32),
    ) {
        let strided = GroupTargets::Strided {
            first: ComponentId::from_index(first),
            stride,
            len,
        };
        prop_assert_eq!(strided.len(), len);
        prop_assert_eq!(strided.is_empty(), len == 0);
        for rank in 0..len {
            prop_assert_eq!(
                strided.get(rank),
                ComponentId::from_index(first + stride * rank)
            );
        }

        let ids: Vec<ComponentId> = raw.iter().map(|&i| ComponentId::from_index(i)).collect();
        let list = GroupTargets::List(ids.clone().into());
        prop_assert_eq!(list.len() as usize, ids.len());
        prop_assert_eq!(list.is_empty(), ids.is_empty());
        for (rank, &id) in ids.iter().enumerate() {
            prop_assert_eq!(list.get(rank as u32), id, "rank {rank}");
        }
    }

    /// Killing a job at an arbitrary instant always terminates the cluster
    /// cleanly with the job in the Killed (or already Completed) state.
    #[test]
    fn kill_is_always_clean(
        kill_ms in 1u64..3_000,
        seed in 0u64..100,
    ) {
        let mut c = Cluster::new(ClusterConfig::paper_cluster().with_seed(seed));
        let hog = c.submit(JobSpec::new(AppSpec::SpinLoop, 64));
        c.kill_at(SimTime::from_millis(kill_ms), hog);
        c.run_until_idle();
        let st = c.job(hog).state;
        prop_assert!(st == JobState::Killed, "state {st:?}");
    }
}
