//! Cross-crate determinism: any experiment, re-run with the same seed, must
//! reproduce its results bit-for-bit — the property every calibration and
//! regression claim in this repository rests on.

use storm::core::prelude::*;

fn full_run(seed: u64) -> (Vec<(JobState, Option<SimTime>)>, u64, u64, String) {
    let mut cfg = ClusterConfig::paper_cluster().with_seed(seed);
    cfg.mpl_max = 2;
    let mut c = Cluster::new(cfg);
    c.enable_tracing();
    let _a = c.submit(JobSpec::new(AppSpec::do_nothing_mb(12), 256));
    let _b = c.submit_at(
        SimTime::from_millis(30),
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_millis(500),
            },
            64,
        ),
    );
    c.run_until_idle();
    let jobs = c
        .report()
        .jobs
        .iter()
        .map(|j| (j.state, j.metrics.completed))
        .collect();
    (
        jobs,
        c.events_delivered(),
        c.world().stats.fragments,
        c.trace(),
    )
}

#[test]
fn identical_seeds_identical_runs() {
    let a = full_run(123);
    let b = full_run(123);
    assert_eq!(a.0, b.0, "job outcomes");
    assert_eq!(a.1, b.1, "event counts");
    assert_eq!(a.2, b.2, "fragment counts");
    assert_eq!(a.3, b.3, "full event traces");
}

#[test]
fn different_seeds_differ_in_noise_not_outcome() {
    let a = full_run(1);
    let b = full_run(2);
    // Same logical outcome…
    assert_eq!(
        a.0.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
        b.0.iter().map(|(s, _)| *s).collect::<Vec<_>>()
    );
    // …but the stochastic timings differ.
    assert_ne!(a.0, b.0, "different seeds must perturb the timings");
}

#[test]
fn loaded_runs_are_deterministic_too() {
    let run = || {
        let mut c = Cluster::new(
            ClusterConfig::paper_cluster()
                .with_load(BackgroundLoad::network_loaded())
                .with_seed(77),
        );
        let j = c.submit(JobSpec::new(AppSpec::do_nothing_mb(12), 256));
        c.run_until_idle();
        c.job(j).metrics.clone()
    };
    assert_eq!(run(), run());
}

#[test]
fn fault_detection_is_deterministic() {
    let run = || {
        let mut cfg = ClusterConfig::paper_cluster().with_seed(5);
        cfg.fault_detection = true;
        cfg.heartbeat_every = 4;
        let mut c = Cluster::new(cfg);
        c.fail_node_at(SimTime::from_millis(33), 7);
        c.fail_node_at(SimTime::from_millis(66), 13);
        c.run_until(SimTime::from_millis(200));
        c.world().stats.failures_detected.clone()
    };
    assert_eq!(run(), run());
}

#[test]
fn gang_runs_are_deterministic() {
    let run = || {
        let mut c = Cluster::new(ClusterConfig::gang_cluster().with_seed(31));
        let a = c.submit(
            JobSpec::new(
                AppSpec::Sweep3d {
                    iterations: 20,
                    compute_per_iter: SimSpan::from_millis(50),
                    comm_bytes_per_iter: 500_000,
                },
                64,
            )
            .with_ranks_per_node(2),
        );
        c.run_until_idle();
        (
            c.job(a).metrics.clone(),
            c.world().stats.strobes,
            c.events_delivered(),
        )
    };
    assert_eq!(run(), run());
}
