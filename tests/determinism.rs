//! Cross-crate determinism: any experiment, re-run with the same seed, must
//! reproduce its results bit-for-bit — the property every calibration and
//! regression claim in this repository rests on.

use storm::core::prelude::*;

fn full_run(seed: u64) -> (Vec<(JobState, Option<SimTime>)>, u64, u64, String) {
    let mut cfg = ClusterConfig::paper_cluster().with_seed(seed);
    cfg.mpl_max = 2;
    let mut c = Cluster::new(cfg);
    c.enable_tracing();
    let _a = c.submit(JobSpec::new(AppSpec::do_nothing_mb(12), 256));
    let _b = c.submit_at(
        SimTime::from_millis(30),
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_millis(500),
            },
            64,
        ),
    );
    c.run_until_idle();
    let jobs = c
        .report()
        .jobs
        .iter()
        .map(|j| (j.state, j.metrics.completed))
        .collect();
    (
        jobs,
        c.events_delivered(),
        c.world().stats.fragments,
        c.trace(),
    )
}

#[test]
fn identical_seeds_identical_runs() {
    let a = full_run(123);
    let b = full_run(123);
    assert_eq!(a.0, b.0, "job outcomes");
    assert_eq!(a.1, b.1, "event counts");
    assert_eq!(a.2, b.2, "fragment counts");
    assert_eq!(a.3, b.3, "full event traces");
}

#[test]
fn different_seeds_differ_in_noise_not_outcome() {
    let a = full_run(1);
    let b = full_run(2);
    // Same logical outcome…
    assert_eq!(
        a.0.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
        b.0.iter().map(|(s, _)| *s).collect::<Vec<_>>()
    );
    // …but the stochastic timings differ.
    assert_ne!(a.0, b.0, "different seeds must perturb the timings");
}

#[test]
fn loaded_runs_are_deterministic_too() {
    let run = || {
        let mut c = Cluster::new(
            ClusterConfig::paper_cluster()
                .with_load(BackgroundLoad::network_loaded())
                .with_seed(77),
        );
        let j = c.submit(JobSpec::new(AppSpec::do_nothing_mb(12), 256));
        c.run_until_idle();
        c.job(j).metrics.clone()
    };
    assert_eq!(run(), run());
}

#[test]
fn fault_detection_is_deterministic() {
    let run = || {
        let mut cfg = ClusterConfig::paper_cluster().with_seed(5);
        cfg.fault_detection = true;
        cfg.heartbeat_every = 4;
        let mut c = Cluster::new(cfg);
        c.fail_node_at(SimTime::from_millis(33), 7);
        c.fail_node_at(SimTime::from_millis(66), 13);
        c.run_until(SimTime::from_millis(200));
        c.world().stats.failures_detected.clone()
    };
    assert_eq!(run(), run());
}

/// A workload exercising every MM fan-out path at once: a chunked binary
/// broadcast + launch, gang rotation between two jobs, and a heartbeat
/// loop that detects a crash, requeues the victim and re-admits the node.
fn mixed_workload_cfg(group_delivery: bool) -> ClusterConfig {
    ClusterConfig::paper_cluster()
        .with_seed(0xD15C)
        .with_group_delivery(group_delivery)
        .with_failure_policy(FailurePolicy::requeue())
        .with_fault_detection(4)
}

struct MixedRun {
    trace: String,
    stats: ClusterStats,
    jobs: Vec<(JobState, JobMetrics)>,
    /// Handler invocations.
    messages: u64,
    /// Events delivered (queue pops).
    events: u64,
    /// (leaps, leaped slices).
    leaps: (u64, u64),
}

fn mixed_workload_run(
    group_delivery: bool,
) -> (
    String,
    ClusterStats,
    Vec<(JobState, JobMetrics)>,
    u64, // messages handled
    u64, // events delivered (queue pops)
) {
    let r = mixed_workload_run_cfg(mixed_workload_cfg(group_delivery));
    (r.trace, r.stats, r.jobs, r.messages, r.events)
}

fn mixed_workload_run_cfg(cfg: ClusterConfig) -> MixedRun {
    let mut c = Cluster::new(cfg);
    c.enable_tracing();
    let _launch = c.submit(JobSpec::new(AppSpec::do_nothing_mb(12), 256));
    let _gang_a = c.submit_at(
        SimTime::from_millis(10),
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_millis(120),
            },
            64,
        ),
    );
    let _gang_b = c.submit_at(
        SimTime::from_millis(20),
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_millis(120),
            },
            128,
        ),
    );
    c.fail_node_at(SimTime::from_millis(40), 9);
    c.rejoin_node_at(SimTime::from_millis(120), 9);
    c.run_until(SimTime::from_millis(400));
    let jobs = c
        .report()
        .jobs
        .iter()
        .map(|j| (j.state, j.metrics.clone()))
        .collect();
    MixedRun {
        trace: c.trace(),
        stats: c.world().stats.clone(),
        jobs,
        messages: c.messages_handled(),
        events: c.events_delivered(),
        leaps: c.leap_stats(),
    }
}

/// Group delivery is an *encoding* change in the event queue, not a
/// semantic one: with the same seed, a run whose fan-outs travel as single
/// group events must be byte-identical — trace, statistics, job metrics,
/// handler invocations — to one sending a queue entry per NM. Only the
/// queue-pop count may (and must) differ.
#[test]
fn group_delivery_is_byte_identical_to_unicast() {
    let grouped = mixed_workload_run(true);
    let unicast = mixed_workload_run(false);
    assert_eq!(grouped.0, unicast.0, "event traces");
    assert_eq!(grouped.1, unicast.1, "cluster statistics");
    assert_eq!(grouped.2, unicast.2, "job states and metrics");
    assert_eq!(grouped.3, unicast.3, "handler invocations");
    assert!(
        grouped.4 < unicast.4,
        "group delivery must pop fewer queue entries ({} vs {})",
        grouped.4,
        unicast.4
    );
}

/// The timing wheel is a *data-structure* change in the event queue, not a
/// semantic one: with the same seed, a run on the hierarchical wheel must
/// be byte-identical — trace, statistics, job metrics, handler invocations,
/// and even queue-pop counts — to one on the reference binary heap.
#[test]
fn wheel_backend_is_byte_identical_to_heap() {
    let wheel =
        mixed_workload_run_cfg(mixed_workload_cfg(true).with_queue_backend(QueueBackend::Wheel));
    let heap =
        mixed_workload_run_cfg(mixed_workload_cfg(true).with_queue_backend(QueueBackend::Heap));
    assert_eq!(wheel.trace, heap.trace, "event traces");
    assert_eq!(wheel.stats, heap.stats, "cluster statistics");
    assert_eq!(wheel.jobs, heap.jobs, "job states and metrics");
    assert_eq!(wheel.messages, heap.messages, "handler invocations");
    assert_eq!(wheel.events, heap.events, "queue pops");
}

/// Same-timeslice event batching is a *dispatch* change in the engine, not
/// a semantic one: when a run of same-instant events targets one component,
/// the engine drains them into a single `handle_batch` call instead of
/// dispatching each through the component table. With the same seed a
/// batched run must be byte-identical — trace, statistics, job metrics,
/// handler invocations, queue pops — to the per-message run, on both queue
/// backends, on the mixed launch + gang + fault workload.
#[test]
fn event_batching_is_byte_identical_to_per_message_delivery() {
    for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
        let batched = mixed_workload_run_cfg(
            mixed_workload_cfg(true)
                .with_queue_backend(backend)
                .with_event_batching(true),
        );
        let single = mixed_workload_run_cfg(
            mixed_workload_cfg(true)
                .with_queue_backend(backend)
                .with_event_batching(false),
        );
        assert_eq!(batched.trace, single.trace, "event traces ({backend:?})");
        assert_eq!(
            batched.stats, single.stats,
            "cluster statistics ({backend:?})"
        );
        assert_eq!(
            batched.jobs, single.jobs,
            "job states and metrics ({backend:?})"
        );
        assert_eq!(
            batched.messages, single.messages,
            "handler invocations ({backend:?})"
        );
        assert_eq!(batched.events, single.events, "queue pops ({backend:?})");
    }
}

/// Under a DST delivery-order hook the engine suspends batching (the hook
/// may interleave targets within an instant), so a hooked run must be
/// byte-identical whatever the batching setting says.
#[test]
fn event_batching_defers_to_a_delivery_order_hook() {
    use storm::sim::DeliveryOrder;
    let hook = |on| {
        mixed_workload_run_cfg(
            mixed_workload_cfg(true)
                .with_delivery_order(DeliveryOrder::seeded(0x9E37, 3))
                .with_event_batching(on),
        )
    };
    let on = hook(true);
    let off = hook(false);
    assert_eq!(on.trace, off.trace, "event traces");
    assert_eq!(on.stats, off.stats, "cluster statistics");
    assert_eq!(on.jobs, off.jobs, "job states and metrics");
    assert_eq!(on.messages, off.messages, "handler invocations");
    assert_eq!(on.events, off.events, "queue pops");
}

/// Idle fast-forward leaps the clock over quiescent timeslices instead of
/// strobing them; every *simulation* observable — trace, statistics, job
/// metrics — must still match the fully-strobed run bit for bit. Only the
/// tick bookkeeping (handler invocations, queue pops) may shrink, and the
/// leaped run must actually have leaped.
#[test]
fn fast_forward_is_byte_identical_to_full_strobing() {
    let leaped = mixed_workload_run_cfg(mixed_workload_cfg(true).with_fast_forward(true));
    let strobed = mixed_workload_run_cfg(mixed_workload_cfg(true).with_fast_forward(false));
    assert_eq!(leaped.trace, strobed.trace, "event traces");
    assert_eq!(leaped.stats, strobed.stats, "cluster statistics");
    assert_eq!(leaped.jobs, strobed.jobs, "job states and metrics");
    let (leaps, slices) = leaped.leaps;
    assert!(leaps > 0, "the idle tail must have been fast-forwarded");
    assert!(slices >= leaps, "each leap skips at least one timeslice");
    assert_eq!(strobed.leaps, (0, 0), "strobed run must not leap");
    assert!(
        leaped.messages < strobed.messages,
        "fast-forward must handle fewer messages ({} vs {})",
        leaped.messages,
        strobed.messages
    );
    assert!(
        leaped.events < strobed.events,
        "fast-forward must pop fewer queue entries ({} vs {})",
        leaped.events,
        strobed.events
    );
}

/// With group delivery the event queue's load per timeslice is O(jobs),
/// not O(nodes): the same workload on an 8×-larger machine may not deliver
/// materially more events.
#[test]
fn event_count_per_timeslice_is_node_independent() {
    let run = |nodes: u32| {
        let mut c = Cluster::new(
            ClusterConfig::paper_cluster()
                .with_nodes(nodes)
                .with_seed(99),
        );
        c.submit(JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_millis(200),
            },
            64,
        ));
        c.run_until_idle();
        (c.events_delivered(), c.world().stats.strobes)
    };
    let (small_events, small_strobes) = run(64);
    let (big_events, big_strobes) = run(512);
    // Same job ⇒ same schedule shape ⇒ comparable strobe counts.
    assert!(big_strobes > 0 && small_strobes > 0);
    let small_rate = small_events as f64 / small_strobes as f64;
    let big_rate = big_events as f64 / big_strobes as f64;
    assert!(
        big_rate < small_rate * 2.0,
        "events per timeslice must not scale with node count: \
         {small_rate:.1} at 64 nodes vs {big_rate:.1} at 512"
    );
}

/// The mixed workload again, instrumented: telemetry + tracing on,
/// returning every serialised observability artefact plus the raw trace
/// and handler count for cross-checks against the uninstrumented run.
fn instrumented_run(group_delivery: bool) -> (String, String, String, String, u64) {
    instrumented_run_cfg(mixed_workload_cfg(group_delivery).with_telemetry(true))
}

fn instrumented_run_cfg(cfg: ClusterConfig) -> (String, String, String, String, u64) {
    let mut c = Cluster::new(cfg);
    c.enable_tracing();
    c.submit(JobSpec::new(AppSpec::do_nothing_mb(12), 256));
    c.submit_at(
        SimTime::from_millis(10),
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_millis(120),
            },
            64,
        ),
    );
    c.submit_at(
        SimTime::from_millis(20),
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_millis(120),
            },
            128,
        ),
    );
    c.fail_node_at(SimTime::from_millis(40), 9);
    c.rejoin_node_at(SimTime::from_millis(120), 9);
    c.run_until(SimTime::from_millis(400));
    (
        c.metrics_snapshot().to_json(),
        spans_jsonl(c.job_spans()),
        c.chrome_trace(),
        c.trace(),
        c.messages_handled(),
    )
}

/// Drop snapshot lines for metric families that are *defined* to differ
/// across the compared settings (one serialised metric per line).
fn strip_metric_lines(snapshot: &str, families: &[&str]) -> String {
    snapshot
        .lines()
        .filter(|l| !families.iter().any(|f| l.contains(f)))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Fast-forward replays the telemetry of skipped quiescent ticks
/// arithmetically; every counter and histogram must match the fully
/// strobed run. Only the `sim.time.*` leap accounting (absent when
/// strobing) and the `sim.queue.*` gauges (sampled at real ticks only)
/// may differ.
#[test]
fn fast_forward_telemetry_matches_full_strobing() {
    let leaped = instrumented_run_cfg(mixed_workload_cfg(true).with_telemetry(true));
    let strobed = instrumented_run_cfg(
        mixed_workload_cfg(true)
            .with_telemetry(true)
            .with_fast_forward(false),
    );
    assert_eq!(
        strip_metric_lines(&leaped.0, &["sim.time.", "sim.queue.", "sim.arena."]),
        strip_metric_lines(&strobed.0, &["sim.time.", "sim.queue.", "sim.arena."]),
        "metrics snapshots (modulo leap accounting and raw queue gauges)"
    );
    assert_eq!(leaped.1, strobed.1, "job span logs");
    assert_eq!(leaped.2, strobed.2, "chrome traces");
    assert_eq!(leaped.3, strobed.3, "event traces");
    assert!(
        leaped.0.contains("sim.time.leaps"),
        "leaped run must record its leaps"
    );
    assert!(
        !strobed.0.contains("sim.time.leaps"),
        "strobed run must not leap"
    );
}

/// Telemetry must be as deterministic as the simulation itself: the full
/// snapshot JSON — counters, gauges, every histogram bucket — plus the
/// span log and Chrome trace must be byte-identical between grouped and
/// unicast delivery, and across same-seed replays. This covers the one
/// metric that could plausibly differ: the per-tick pending-message depth,
/// which is defined logically rather than as raw queue entries.
#[test]
fn telemetry_is_byte_identical_across_modes_and_replays() {
    let grouped = instrumented_run(true);
    let unicast = instrumented_run(false);
    // `sim.queue.*` gauges sample *raw* queue entries, and `sim.arena.*`
    // raw interned payloads; both by design count a group fan-out once
    // and a unicast fan-out N times — they are the metric families
    // allowed to differ across delivery modes.
    assert_eq!(
        strip_metric_lines(&grouped.0, &["sim.queue.", "sim.arena."]),
        strip_metric_lines(&unicast.0, &["sim.queue.", "sim.arena."]),
        "metrics snapshots (modulo raw queue-depth gauges)"
    );
    assert_eq!(grouped.1, unicast.1, "job span logs");
    assert_eq!(grouped.2, unicast.2, "chrome traces");
    let replay = instrumented_run(true);
    assert_eq!(grouped.0, replay.0, "same-seed snapshot replay");
    assert_eq!(grouped.1, replay.1, "same-seed span replay");
    assert_eq!(grouped.2, replay.2, "same-seed chrome-trace replay");
    // Sanity: the instrumented run actually measured something.
    assert!(grouped.0.contains("jobs.submitted"));
    assert!(grouped.0.contains("fault.detections"));
    assert!(!grouped.1.is_empty(), "spans were collected");
    validate_json(&grouped.0).unwrap();
    validate_json(&grouped.2).unwrap();
    for line in grouped.1.lines() {
        validate_json(line).unwrap();
    }
}

/// The zero-cost contract: enabling telemetry must not perturb the
/// simulation. The event trace and handler count of an instrumented run
/// must equal those of the plain run of the same workload.
#[test]
fn telemetry_does_not_perturb_the_simulation() {
    let plain = mixed_workload_run(true);
    let instrumented = instrumented_run(true);
    assert_eq!(plain.0, instrumented.3, "event traces");
    assert_eq!(plain.3, instrumented.4, "handler invocations");
}

#[test]
fn gang_runs_are_deterministic() {
    let run = || {
        let mut c = Cluster::new(ClusterConfig::gang_cluster().with_seed(31));
        let a = c.submit(
            JobSpec::new(
                AppSpec::Sweep3d {
                    iterations: 20,
                    compute_per_iter: SimSpan::from_millis(50),
                    comm_bytes_per_iter: 500_000,
                },
                64,
            )
            .with_ranks_per_node(2),
        );
        c.run_until_idle();
        (
            c.job(a).metrics.clone(),
            c.world().stats.strobes,
            c.events_delivered(),
        )
    };
    assert_eq!(run(), run());
}

/// Checkpoint/restore must be seamless: pausing a run mid-flight with
/// `Cluster::checkpoint()` and resuming the artifact with
/// `Cluster::restore()` must reproduce the uninterrupted run *exactly* —
/// same trace, same stats, same telemetry, same interleaving digest,
/// same final checkpoint bytes — under both event-queue backends.
fn checkpoint_resume_roundtrip(backend: QueueBackend) {
    let cfg = ClusterConfig::paper_cluster()
        .with_seed(41)
        .with_queue_backend(backend)
        .with_telemetry(true)
        .with_fault_detection(4);
    let mut live = Cluster::new(cfg);
    live.enable_tracing();
    live.register_query("health", Condition::QuarantinedAbove(0));
    live.submit(JobSpec::new(AppSpec::do_nothing_mb(8), 128));
    live.submit_at(
        SimTime::from_millis(20),
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_millis(150),
            },
            32,
        ),
    );
    live.fail_node_at(SimTime::from_millis(70), 5);

    // Pause mid-transfer, with a queued job and a pending fault event.
    live.run_until(SimTime::from_millis(45));
    let artifact = live.checkpoint();
    let mut resumed = Cluster::restore(&artifact).expect("restore");
    assert_eq!(resumed.now(), live.now());

    live.run_until(SimTime::from_millis(600));
    resumed.run_until(SimTime::from_millis(600));
    assert_eq!(
        live.interleaving_digest(),
        resumed.interleaving_digest(),
        "interleaving digest after resume"
    );
    assert_eq!(live.trace(), resumed.trace(), "event traces");
    assert_eq!(
        live.metrics_snapshot().to_json(),
        resumed.metrics_snapshot().to_json(),
        "telemetry snapshots"
    );
    assert_eq!(live.alerts(), resumed.alerts(), "continuous-query alerts");
    assert_eq!(live.world().stats, resumed.world().stats, "cluster stats");
    assert_eq!(
        live.checkpoint(),
        resumed.checkpoint(),
        "final checkpoints must be byte-identical"
    );
}

#[test]
fn checkpoint_restore_resume_is_byte_identical_on_heap() {
    checkpoint_resume_roundtrip(QueueBackend::Heap);
}

#[test]
fn checkpoint_restore_resume_is_byte_identical_on_wheel() {
    checkpoint_resume_roundtrip(QueueBackend::Wheel);
}

/// The continuous-query zero-cost contract: with no queries registered
/// the boundary hook is a single branch, so a run on a cluster that
/// never touches the query surface is byte-identical to one that has it
/// wired in but empty — and registering queries changes observations
/// only (alerts, counters), never the simulation.
#[test]
fn zero_queries_are_byte_identical_and_registered_queries_only_observe() {
    let run = |register: bool| {
        let cfg = ClusterConfig::paper_cluster()
            .with_seed(53)
            .with_fault_detection(4);
        let mut c = Cluster::new(cfg);
        c.enable_tracing();
        if register {
            c.register_query("health", Condition::QuarantinedAbove(0));
            c.register_query("backlog", Condition::QueueDepthGrowingFor(3));
        }
        c.submit(JobSpec::new(AppSpec::do_nothing_mb(6), 128));
        c.fail_node_at(SimTime::from_millis(40), 11);
        c.run_until(SimTime::from_millis(300));
        (
            c.interleaving_digest(),
            c.trace(),
            c.events_delivered(),
            c.world().stats.clone(),
            c.alerts().to_vec(),
        )
    };
    let bare = run(false);
    let watched = run(true);
    assert_eq!(bare.0, watched.0, "interleaving digest");
    assert_eq!(bare.1, watched.1, "event trace");
    assert_eq!(bare.2, watched.2, "events delivered");
    assert_eq!(bare.3, watched.3, "cluster stats");
    assert!(bare.4.is_empty(), "no queries, no alerts");
    assert!(!watched.4.is_empty(), "quarantine fires the health query");
}

/// The Chrome trace exporter in full: the document a real instrumented
/// run produces must be valid JSON with the expected event stream —
/// metadata tracks, instant events for simulator trace records, complete
/// (`"ph": "X"`) events for job phases — and the *event ordering* must
/// be deterministic: two same-seed runs emit the identical sequence of
/// (name, phase, timestamp, track) tuples, and instants appear in
/// non-decreasing time order (the order the simulation handled them).
#[test]
fn chrome_trace_is_valid_and_ordering_is_deterministic() {
    use storm::telemetry::json;

    let events = |doc: &str| -> Vec<(String, String, String, u64, u64)> {
        let v = json::parse(doc).expect("chrome trace parses");
        v.req("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|e| {
                (
                    e.req("name").unwrap().as_str().unwrap().to_string(),
                    e.req("ph").unwrap().as_str().unwrap().to_string(),
                    match e.get("ts") {
                        Some(json::Value::Num(tok)) => tok.clone(),
                        _ => String::new(),
                    },
                    e.req("pid").unwrap().as_u64().unwrap(),
                    e.get("tid").and_then(|t| t.as_u64()).unwrap_or(0),
                )
            })
            .collect()
    };

    let first = instrumented_run(true);
    let second = instrumented_run(true);
    validate_json(&first.2).unwrap();
    assert_eq!(first.2, second.2, "same-seed chrome traces byte-identical");

    let evs = events(&first.2);
    assert_eq!(evs, events(&second.2), "event sequences identical");
    // Both process tracks are named, and both event kinds are present.
    let metas: Vec<_> = evs.iter().filter(|e| e.1 == "M").collect();
    assert_eq!(
        metas.iter().filter(|e| e.0 == "process_name").count(),
        2,
        "daemon + job process metadata"
    );
    assert!(evs.iter().any(|e| e.1 == "i" && e.3 == 0), "instant events");
    assert!(evs.iter().any(|e| e.1 == "X" && e.3 == 1), "phase events");
    // Instant events replay the trace log: strictly chronological.
    let instant_ts: Vec<f64> = evs
        .iter()
        .filter(|e| e.1 == "i")
        .map(|e| e.2.parse().unwrap())
        .collect();
    assert!(!instant_ts.is_empty());
    assert!(
        instant_ts.windows(2).all(|w| w[0] <= w[1]),
        "instants non-decreasing in time"
    );
}

/// One unicast (no group delivery) run with everything observable turned
/// on, for the parallel-execution lock-step comparisons below. The low
/// window floor makes the 64-node cluster's same-instant fan-outs
/// (strobes, heartbeats, write completions) form real parallel windows.
fn threads_run(threads: u32, backend: QueueBackend) -> (String, String, u64) {
    let mut cfg = ClusterConfig::paper_cluster()
        .with_seed(909)
        .with_queue_backend(backend)
        .with_threads(threads)
        .with_telemetry(true)
        .with_group_delivery(false)
        .with_fault_detection(4);
    cfg.mpl_max = 2;
    let mut c = Cluster::new(cfg);
    c.set_parallel_window_min(8);
    c.enable_tracing();
    c.submit(JobSpec::new(AppSpec::do_nothing_mb(12), 256));
    c.submit_at(
        SimTime::from_millis(30),
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_millis(500),
            },
            64,
        ),
    );
    c.run_until(SimTime::from_secs(2));
    let observables = format!(
        "events={} queue={:?} arena={:?} stats={:?}",
        c.events_delivered(),
        c.queue_stats(),
        c.arena_stats(),
        c.world().stats,
    );
    let telemetry = c.metrics_snapshot().to_json();
    (
        format!("{observables} trace={}", c.trace()),
        telemetry,
        c.parallel_windows(),
    )
}

/// The tentpole contract: any worker-thread count reproduces the serial
/// run byte for byte — trace, queue/arena accounting (peaks included),
/// cluster stats, and every telemetry gauge — under both queue backends,
/// with the parallel path provably exercised (window counter > 0).
#[test]
fn parallel_threads_are_byte_identical_across_backends() {
    for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
        let (serial, serial_tel, w1) = threads_run(1, backend);
        assert_eq!(w1, 0, "threads=1 must stay serial");
        for threads in [2, 4] {
            let (par, par_tel, wn) = threads_run(threads, backend);
            assert!(
                wn > 0,
                "parallel path must actually run ({backend:?}, threads={threads})"
            );
            assert_eq!(
                serial, par,
                "{backend:?} threads={threads}: observables diverged"
            );
            assert_eq!(
                serial_tel, par_tel,
                "{backend:?} threads={threads}: telemetry snapshots diverged"
            );
        }
    }
}

/// Checkpoints pin the resolved thread count, and a restored cluster —
/// even one that ends up executing a *different* mix of parallel and
/// serial windows (the window floor is not checkpointed) — replays the
/// run byte-identically: the thread count is purely a wall-clock knob.
#[test]
fn checkpoint_pins_threads_and_restores_byte_identically() {
    let cfg = ClusterConfig::paper_cluster()
        .with_seed(77)
        .with_threads(4)
        .with_telemetry(true)
        .with_group_delivery(false)
        .with_fault_detection(4);
    let mut live = Cluster::new(cfg);
    live.set_parallel_window_min(8);
    live.enable_tracing();
    live.submit(JobSpec::new(AppSpec::do_nothing_mb(8), 128));
    live.run_until(SimTime::from_millis(45));
    let artifact = live.checkpoint();
    assert!(
        artifact.contains("\"threads\": 4") || artifact.contains("\"threads\":4"),
        "checkpoint must pin the resolved thread count"
    );

    let mut resumed = Cluster::restore(&artifact).expect("restore");
    assert_eq!(
        resumed.threads(),
        4,
        "restored cluster resolves pinned threads"
    );
    live.run_until(SimTime::from_millis(400));
    resumed.run_until(SimTime::from_millis(400));
    assert!(
        live.parallel_windows() > 0,
        "live run must exercise parallel windows"
    );
    assert_eq!(live.trace(), resumed.trace(), "event traces");
    assert_eq!(
        live.metrics_snapshot().to_json(),
        resumed.metrics_snapshot().to_json(),
        "telemetry snapshots"
    );
    assert_eq!(
        live.checkpoint(),
        resumed.checkpoint(),
        "final checkpoints must be byte-identical"
    );
}
