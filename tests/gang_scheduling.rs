//! Gang-scheduling integration tests: the §3.2 experiments in miniature.
//! (Short synthetic workloads keep debug-mode runtimes reasonable; the full
//! 49 s SWEEP3D sweeps live in the release-mode benches.)

use storm::core::prelude::*;

/// A quick BSP app: `secs` of compute in 100 ms steps with light
/// communication.
fn quick_app(secs: u64) -> AppSpec {
    AppSpec::Sweep3d {
        iterations: (secs * 10) as u32,
        compute_per_iter: SimSpan::from_millis(100),
        comm_bytes_per_iter: 500_000,
    }
}

fn normalised_runtime(app: AppSpec, mpl: u32, quantum: SimSpan, nodes: u32) -> Option<f64> {
    let cfg = ClusterConfig::gang_cluster()
        .with_nodes(nodes)
        .with_timeslice(quantum);
    if cfg.quantum_infeasible() {
        return None;
    }
    let mut c = Cluster::new(cfg);
    let jobs: Vec<JobId> = (0..mpl)
        .map(|_| c.submit(JobSpec::new(app.clone(), nodes * 2).with_ranks_per_node(2)))
        .collect();
    c.run_until_idle();
    let last = jobs
        .iter()
        .map(|&j| c.job(j).metrics.completed.unwrap())
        .max()
        .unwrap();
    Some(last.as_secs_f64() / f64::from(mpl))
}

#[test]
fn quanta_below_the_nm_floor_are_infeasible() {
    assert!(normalised_runtime(quick_app(2), 1, SimSpan::from_micros(100), 8).is_none());
    assert!(normalised_runtime(quick_app(2), 1, SimSpan::from_micros(279), 8).is_none());
    assert!(normalised_runtime(quick_app(2), 1, SimSpan::from_micros(300), 8).is_some());
}

#[test]
fn runtime_is_flat_across_quanta() {
    let app = quick_app(5);
    let runtimes: Vec<f64> = [1u64, 5, 20, 50, 200]
        .iter()
        .map(|&ms| normalised_runtime(app.clone(), 2, SimSpan::from_millis(ms), 8).unwrap())
        .collect();
    let lo = runtimes.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = runtimes.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(hi / lo < 1.06, "quantum sweep {runtimes:?}");
}

#[test]
fn mpl2_normalised_equals_mpl1() {
    let app = quick_app(5);
    let q = SimSpan::from_millis(2);
    let one = normalised_runtime(app.clone(), 1, q, 8).unwrap();
    let two = normalised_runtime(app, 2, q, 8).unwrap();
    assert!(
        (two - one).abs() / one < 0.05,
        "MPL=1 {one:.2} s vs MPL=2/2 {two:.2} s"
    );
}

#[test]
fn runtime_is_flat_in_node_count() {
    let app = quick_app(5);
    let q = SimSpan::from_millis(50);
    let runtimes: Vec<f64> = [1u32, 4, 16, 32]
        .iter()
        .map(|&n| normalised_runtime(app.clone(), 1, q, n).unwrap())
        .collect();
    let lo = runtimes.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = runtimes.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(hi / lo < 1.10, "node sweep {runtimes:?}");
}

#[test]
fn three_jobs_round_robin_with_mpl3() {
    let mut cfg = ClusterConfig::gang_cluster().with_nodes(8);
    cfg.mpl_max = 3;
    let mut c = Cluster::new(cfg);
    let jobs: Vec<JobId> = (0..3)
        .map(|_| c.submit(JobSpec::new(quick_app(2), 16).with_ranks_per_node(2)))
        .collect();
    c.run_until_idle();
    for &j in &jobs {
        assert_eq!(c.job(j).state, JobState::Completed);
    }
    // Fair-share: ~3× the solo runtime each, so completions cluster.
    let times: Vec<f64> = jobs
        .iter()
        .map(|&j| c.job(j).metrics.completed.unwrap().as_secs_f64())
        .collect();
    let spread = (times.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - times.iter().cloned().fold(f64::INFINITY, f64::min))
    .abs();
    assert!(spread < 1.0, "MPL-3 completions cluster: {times:?}");
}

#[test]
fn space_sharing_runs_disjoint_jobs_concurrently() {
    // Two 4-node jobs on an 8-node machine share slot 0 and run at full
    // speed simultaneously.
    let mut c = Cluster::new(ClusterConfig::gang_cluster().with_nodes(8));
    let a = c.submit(JobSpec::new(quick_app(4), 8).with_ranks_per_node(2));
    let b = c.submit(JobSpec::new(quick_app(4), 8).with_ranks_per_node(2));
    c.run_until_idle();
    let ta = c.job(a).metrics.turnaround().unwrap().as_secs_f64();
    let tb = c.job(b).metrics.turnaround().unwrap().as_secs_f64();
    // Neither pays a timesharing penalty: both ≈ solo runtime (~4.3 s).
    assert!(ta < 5.5 && tb < 5.5, "space-shared: {ta:.1} s / {tb:.1} s");
    assert_eq!(c.world().matrix.mpl(), 0, "matrix drained");
}

#[test]
fn strobes_are_issued_at_quantum_cadence() {
    let q = SimSpan::from_millis(10);
    let mut c = Cluster::new(
        ClusterConfig::gang_cluster()
            .with_nodes(4)
            .with_timeslice(q),
    );
    let j = c.submit(JobSpec::new(quick_app(2), 8).with_ranks_per_node(2));
    c.run_until_idle();
    let runtime = c.job(j).metrics.completed.unwrap().as_secs_f64();
    let strobes = c.world().stats.strobes as f64;
    let expected = runtime / q.as_secs_f64();
    assert!(
        (strobes - expected).abs() / expected < 0.15,
        "strobes {strobes} vs expected ~{expected:.0}"
    );
}

#[test]
fn interactive_job_beside_production_job() {
    let mut c = Cluster::new(ClusterConfig::gang_cluster().with_timeslice(SimSpan::from_millis(2)));
    let prod = c.submit(JobSpec::new(quick_app(20), 64).with_ranks_per_node(2));
    let probe = c.submit_at(
        SimTime::from_secs(5),
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_secs(1),
            },
            64,
        )
        .with_ranks_per_node(2),
    );
    c.run_until_idle();
    let probe_turnaround = c.job(probe).metrics.turnaround().unwrap().as_secs_f64();
    assert!(
        probe_turnaround < 3.0,
        "1 s interactive job turns around in {probe_turnaround:.1} s while a 20 s job runs"
    );
    assert_eq!(c.job(prod).state, JobState::Completed);
}
