//! Deterministic-simulation-testing acceptance: the DST hooks are
//! zero-cost when disabled, genuinely explore the schedule space when
//! enabled, and the detect → shrink → replay pipeline produces tiny,
//! faithful repro artifacts. See DESIGN.md §14.

use storm::core::prelude::*;
use storm::sim::DeliveryOrder;
use storm_dst::prelude::{
    explore_swarm, replay, run_scenario, run_scenario_caught, shrink, Injection, InjectionKind,
    OrderSpec, Repro, Scenario,
};

/// A workload touching every fan-out path: a chunked binary launch, two
/// gang-rotating compute jobs, and a crash + rejoin under the heartbeat
/// loop. Small enough to run in milliseconds, rich enough that any
/// ordering drift would show in the trace.
fn mixed_cfg() -> ClusterConfig {
    ClusterConfig::paper_cluster()
        .with_seed(0xD57)
        .with_failure_policy(FailurePolicy::requeue())
        .with_fault_detection(4)
}

fn mixed_run(cfg: ClusterConfig) -> (String, ClusterStats, u64, u64) {
    let mut c = Cluster::new(cfg);
    c.enable_tracing();
    c.submit(JobSpec::new(AppSpec::do_nothing_mb(12), 256));
    c.submit_at(
        SimTime::from_millis(10),
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_millis(120),
            },
            64,
        ),
    );
    c.fail_node_at(SimTime::from_millis(40), 9);
    c.rejoin_node_at(SimTime::from_millis(120), 9);
    c.run_until(SimTime::from_millis(300));
    (
        c.trace(),
        c.world().stats.clone(),
        c.messages_handled(),
        c.events_delivered(),
    )
}

/// The zero-drift contract: an *inert* delivery-order hook — an empty tie
/// script, or a seeded order with amplitude 0 — must leave the run
/// byte-identical to no hook at all. Every tie is 0, so the total order
/// `(time, 0, seq)` collapses to the classic `(time, seq)`.
#[test]
fn inert_dst_hooks_cause_zero_behavioral_drift() {
    let plain = mixed_run(mixed_cfg());
    let scripted = mixed_run(mixed_cfg().with_delivery_order(DeliveryOrder::script(Vec::new())));
    let seeded = mixed_run(mixed_cfg().with_delivery_order(DeliveryOrder::seeded(0x9E37, 0)));
    assert_eq!(plain.0, scripted.0, "trace: empty script vs none");
    assert_eq!(plain.0, seeded.0, "trace: amplitude-0 seed vs none");
    assert_eq!(plain.1, scripted.1, "stats: empty script vs none");
    assert_eq!(plain.1, seeded.1, "stats: amplitude-0 seed vs none");
    assert_eq!(plain.2, scripted.2, "handler invocations");
    assert_eq!(plain.2, seeded.2, "handler invocations");
    assert_eq!(plain.3, scripted.3, "queue pops");
    assert_eq!(plain.3, seeded.3, "queue pops");
}

/// A *non*-inert order must actually reorder: same workload, amplitude 3,
/// different trace digest than the default order for at least one seed.
#[test]
fn seeded_reordering_actually_reorders() {
    let base = run_scenario(&Scenario::two_node_launch());
    let reordered = (0..8).map(|seed| {
        run_scenario(&Scenario::two_node_launch().with_order(OrderSpec::Seeded {
            seed,
            amplitude: 3,
            delay_us: 0,
        }))
    });
    assert!(
        reordered.into_iter().any(|o| o.digest != base.digest),
        "eight seeded orders never diverged from the default schedule"
    );
}

/// Acceptance criterion: a seeded reordering sweep explores at least 100
/// distinct interleavings of the 2-node launch. Tie permutation plus a
/// 20 µs bounded delivery delay makes every seed reach a distinct
/// schedule, and every one of them must satisfy all oracles.
#[test]
fn swarm_explores_at_least_100_distinct_interleavings() {
    let report = explore_swarm(&Scenario::two_node_launch(), 3, 20, 0..128);
    assert_eq!(report.runs, 128);
    assert!(
        report.failure.is_none(),
        "an oracle fired during exploration: {:?}",
        report.failure
    );
    assert!(
        report.distinct >= 100,
        "only {} distinct interleavings in 128 seeded runs",
        report.distinct
    );
}

/// The same seeded order must execute the same interleaving on both event
/// queue backends: the wheel is a data-structure change, not a semantic
/// one, even under DST reordering with bounded delays.
#[test]
fn seeded_order_is_backend_independent() {
    let scenario = |backend| {
        Scenario::two_node_launch()
            .with_order(OrderSpec::Seeded {
                seed: 11,
                amplitude: 3,
                delay_us: 20,
            })
            .with_backend(backend)
    };
    let heap = run_scenario(&scenario(QueueBackend::Heap));
    let wheel = run_scenario(&scenario(QueueBackend::Wheel));
    assert!(!heap.failed(), "violation: {:?}", heap.violation);
    assert_eq!(heap, wheel, "heap and wheel must agree on the outcome");
}

/// Acceptance criterion: an intentionally seeded oracle violation shrinks
/// to a repro of at most 10 events whose artifact replays
/// deterministically — twice, from the serialized JSON.
#[test]
fn seeded_violation_shrinks_to_tiny_replayable_artifact() {
    let seeded = Scenario::small_chaos()
        .with_order(OrderSpec::Seeded {
            seed: 0xBEEF,
            amplitude: 2,
            delay_us: 0,
        })
        .with_injection(Injection {
            at_ms: 30,
            kind: InjectionKind::CompletedSkew,
        });
    let outcome = run_scenario_caught(&seeded);
    assert!(outcome.failed(), "the seeded violation was not detected");

    let (minimal, min_out) = shrink(&seeded, &outcome);
    let repro = Repro::from_run(&minimal, &min_out);
    assert!(
        repro.event_count <= 10,
        "shrunk repro still has {} events",
        repro.event_count
    );

    // The artifact must survive serialization and replay byte-identically.
    let text = repro.to_json_string();
    let back = Repro::from_json_str(&text).expect("artifact parses");
    let report = replay(&back);
    assert!(
        report.faithful(),
        "replay mismatches: {:?}",
        report.mismatches
    );
}

/// Acceptance criterion for the replicated MM: kill the active MM at
/// *every* timeslice boundary of the two-node launch window and the full
/// oracle suite — including `single_active_mm`, `no_job_lost` and
/// `repl_consistency` — holds at every boundary of every run, with the
/// launch completing under the promoted standby each time.
#[test]
fn mm_kill_at_every_boundary_never_violates_an_oracle() {
    use storm_dst::prelude::{FaultKind, FaultSpec};
    let base = Scenario::two_node_launch();
    // Replicate the MM and turn the heartbeat/watchdog machinery on; give
    // the run enough horizon to detect, promote, resync and finish.
    for kill_ms in 0..=base.horizon_ms {
        let mut s = base.clone();
        s.name = format!("mm-kill-at-{kill_ms}ms");
        s.heartbeat_every = 4;
        s.mm_standbys = 1;
        s.horizon_ms = 160;
        s.faults.push(FaultSpec {
            at_ms: kill_ms,
            node: 0, // rank 0 = the active primary
            kind: FaultKind::MmKill,
        });
        let out = run_scenario(&s);
        assert!(
            out.violation.is_none(),
            "kill at {kill_ms} ms: {:?}",
            out.violation
        );
        assert_eq!(
            out.completed, 1,
            "kill at {kill_ms} ms: launch did not complete under the new MM"
        );
    }
}
