//! Chaos-test harness: randomized fault schedules over many seeds, with
//! four invariants checked per run:
//!
//! 1. **No job lost** — every job reaches a terminal state; a `Failed`
//!    state is only acceptable once the retry budget was genuinely spent.
//! 2. **Bounded detection** — every injected crash/stall is detected
//!    within two heartbeat rounds (plus one collect period of alignment
//!    slack), unless a scheduled network-error burst overlapped the
//!    detection window.
//! 3. **Determinism** — the same seed replays the same run, byte for byte:
//!    identical detections, rejoins, requeues, retry counts and completion
//!    instants.
//! 4. **Zero-cost health** — a fault-detection-enabled run with an empty
//!    schedule is indistinguishable from a detection-off run except for
//!    the heartbeat traffic itself.

use storm::core::prelude::*;

const NODES: u32 = 64;
const HEARTBEAT_EVERY: u32 = 4;
const HORIZON: SimSpan = SimSpan::from_millis(1_000);

fn chaos_cfg(seed: u64) -> ClusterConfig {
    ClusterConfig::paper_cluster()
        .with_seed(seed)
        .with_fault_detection(HEARTBEAT_EVERY)
        .with_failure_policy(FailurePolicy::requeue())
        .with_faults(FaultSchedule::randomized(seed, NODES, HORIZON))
}

/// Everything a chaos run produces that determinism must preserve.
#[derive(Debug, PartialEq)]
struct Outcome {
    jobs: Vec<(JobState, u32, Option<SimTime>)>,
    failures: Vec<(u32, SimTime)>,
    rejoins: Vec<(u32, SimTime)>,
    requeues: u64,
    events_delivered: u64,
}

fn run_chaos(seed: u64) -> (Outcome, FaultSchedule) {
    let cfg = chaos_cfg(seed);
    let schedule = cfg.faults.clone();
    let mut c = Cluster::new(cfg);
    let mut jobs = Vec::new();
    for i in 0..4u64 {
        jobs.push(
            c.submit_at(
                SimTime::from_millis(50 * i),
                JobSpec::new(
                    AppSpec::Synthetic {
                        compute: SimSpan::from_millis(400),
                    },
                    8 * 4,
                )
                .named(format!("chaos-{i}")),
            ),
        );
    }
    c.run_until(SimTime::from_secs(3));
    let w = c.world();
    let outcome = Outcome {
        jobs: jobs
            .iter()
            .map(|&j| {
                let r = c.job(j);
                (r.state, r.retries, r.metrics.completed)
            })
            .collect(),
        failures: w.stats.failures_detected.clone(),
        rejoins: w.stats.rejoins.clone(),
        requeues: w.stats.requeues,
        events_delivered: c.events_delivered(),
    };
    (outcome, schedule)
}

/// Injection instant per faulted node: crash time or stall start.
fn fault_starts(schedule: &FaultSchedule) -> Vec<(u32, SimTime)> {
    schedule
        .events
        .iter()
        .filter_map(|ev| match *ev {
            FaultEvent::Crash { at, node } => Some((node, at)),
            FaultEvent::Stall { node, from, .. } => Some((node, from)),
            // MM crashes target a replica rank, not a compute node.
            FaultEvent::Rejoin { .. } | FaultEvent::MmCrash { .. } => None,
        })
        .collect()
}

#[test]
fn randomized_schedules_preserve_every_job() {
    for seed in 0..16u64 {
        let (outcome, schedule) = run_chaos(seed);
        let max_retries = 3; // FailurePolicy::requeue()
        for (i, &(state, retries, _)) in outcome.jobs.iter().enumerate() {
            assert!(
                state.is_terminal(),
                "seed {seed}: job {i} stuck in {state:?} (schedule {schedule:?})"
            );
            if state == JobState::Failed {
                assert_eq!(
                    retries, max_retries,
                    "seed {seed}: job {i} failed with budget left"
                );
            } else {
                assert_eq!(state, JobState::Completed, "seed {seed}: job {i}");
            }
        }
        assert!(
            outcome.requeues >= u64::from(outcome.jobs.iter().map(|&(_, r, _)| r).sum::<u32>()),
            "seed {seed}: every retry was a requeue"
        );
    }
}

#[test]
fn detection_latency_is_bounded_by_two_rounds() {
    // Two heartbeat periods plus one collect period of boundary slack.
    let period = SimSpan::from_millis(u64::from(HEARTBEAT_EVERY));
    let bound = period * 2 + SimSpan::from_millis(1);
    let mut checked = 0u32;
    for seed in 0..16u64 {
        let (outcome, schedule) = run_chaos(seed);
        let starts = fault_starts(&schedule);
        for &(node, start) in &starts {
            let Some(&(_, detected)) = outcome.failures.iter().find(|&&(n, _)| n == node) else {
                panic!("seed {seed}: fault on node {node} never detected");
            };
            // A burst can abort the heartbeat multicast itself, legitimately
            // delaying the round; skip the bound when one overlapped.
            let burst_overlaps = schedule
                .bursts
                .iter()
                .any(|b| b.from <= detected && b.until >= start);
            if burst_overlaps {
                continue;
            }
            let latency = detected.since(start);
            assert!(
                latency <= bound,
                "seed {seed}: node {node} detected after {latency} (> {bound})"
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 16,
        "the sweep actually exercised detections: {checked}"
    );
}

#[test]
fn identical_seed_replays_identical_trace() {
    for seed in [0u64, 3, 7, 11] {
        let (a, _) = run_chaos(seed);
        let (b, _) = run_chaos(seed);
        assert_eq!(a, b, "seed {seed}: chaos runs diverged");
    }
}

#[test]
fn healthy_schedule_is_byte_identical_to_detection_off() {
    // Same seed, same jobs; one run has fault detection + an empty fault
    // schedule, the other has detection off entirely. Everything except
    // the heartbeat traffic must match exactly: per-job timelines,
    // fragment/flow/report counters.
    let run = |detection: bool| {
        let mut cfg = ClusterConfig::paper_cluster().with_seed(1234);
        if detection {
            cfg = cfg.with_fault_detection(HEARTBEAT_EVERY);
        }
        let mut c = Cluster::new(cfg);
        let jobs: Vec<JobId> = (0..3u64)
            .map(|i| {
                c.submit_at(
                    SimTime::from_millis(40 * i),
                    JobSpec::new(AppSpec::do_nothing_mb(4 + 2 * i), 16 * 4),
                )
            })
            .collect();
        c.run_until(SimTime::from_secs(2));
        let w = c.world();
        (
            jobs.iter()
                .map(|&j| c.job(j).metrics.clone())
                .collect::<Vec<_>>(),
            w.stats.fragments,
            w.stats.flow_stalls,
            w.stats.reports,
            w.stats.failures_detected.len(),
        )
    };
    let on = run(true);
    let off = run(false);
    assert_eq!(on.4, 0, "healthy cluster raised no alarms");
    assert_eq!(on.0, off.0, "job timelines must match exactly");
    assert_eq!(on.1, off.1, "fragment counts must match");
    assert_eq!(on.2, off.2, "flow stalls must match");
    assert_eq!(on.3, off.3, "report counts must match");
}

#[test]
fn scripted_crash_and_rejoin_recovers_every_job_across_8_seeds() {
    // ISSUE acceptance scenario: crash a node mid-run under Requeue, rejoin
    // it 500 ms later. Every job completes, the rejoined node hosts new
    // work, and the whole thing is deterministic per seed.
    let run = |seed: u64| {
        let cfg = ClusterConfig::paper_cluster()
            .with_seed(seed)
            .with_fault_detection(HEARTBEAT_EVERY)
            .with_failure_policy(FailurePolicy::requeue())
            .with_faults(
                FaultSchedule::new()
                    .crash(SimTime::from_millis(150), 3)
                    .rejoin(SimTime::from_millis(650), 3),
            );
        let mut c = Cluster::new(cfg);
        let jobs: Vec<JobId> = (0..4u64)
            .map(|i| {
                c.submit_at(
                    SimTime::from_millis(30 * i),
                    JobSpec::new(
                        AppSpec::Synthetic {
                            compute: SimSpan::from_millis(300),
                        },
                        8 * 4,
                    ),
                )
            })
            .collect();
        c.run_until(SimTime::from_millis(800));
        // Node 3 crashed at 150 ms and rejoined at 650 ms; by 800 ms it must
        // be re-admitted, so a full-width job is placeable again.
        let full = c.submit(JobSpec::new(AppSpec::do_nothing_mb(4), 64 * 4));
        c.run_until(SimTime::from_secs(3));
        let w = c.world();
        (
            jobs.iter()
                .map(|&j| (c.job(j).state, c.job(j).retries, c.job(j).metrics.completed))
                .collect::<Vec<_>>(),
            c.job(full).state,
            w.stats.failures_detected.clone(),
            w.stats.rejoins.clone(),
            w.stats.requeues,
        )
    };
    for seed in 0..8u64 {
        let (jobs, full_state, failures, rejoins, requeues) = run(seed);
        for (i, &(state, _, _)) in jobs.iter().enumerate() {
            assert_eq!(state, JobState::Completed, "seed {seed}: job {i} lost");
        }
        assert_eq!(
            full_state,
            JobState::Completed,
            "seed {seed}: rejoined node unusable"
        );
        assert_eq!(failures.len(), 1, "seed {seed}: {failures:?}");
        assert_eq!(failures[0].0, 3);
        assert_eq!(rejoins.len(), 1, "seed {seed}: {rejoins:?}");
        assert_eq!(rejoins[0].0, 3);
        assert!(
            requeues >= 1,
            "seed {seed}: the crash displaced at least one job"
        );
        // Determinism: the same seed reproduces the identical outcome.
        let again = run(seed);
        assert_eq!(again.0, jobs, "seed {seed}: job outcomes diverged");
        assert_eq!(again.2, failures, "seed {seed}: detections diverged");
        assert_eq!(again.3, rejoins, "seed {seed}: rejoins diverged");
        assert_eq!(again.4, requeues, "seed {seed}: requeues diverged");
    }
}

/// Satellite: MM failover. Killing the active MM mid-run must (a) be
/// detected by the standby watchdogs within two beat periods, (b) lose no
/// job — everything still reaches `Completed` under the promoted MM — and
/// (c) replay identically under the same seed. Heartbeat-round
/// monotonicity and quarantine safety (no live node falsely condemned
/// during the regroup) ride along.
#[test]
fn mm_failover_detects_promotes_and_replays() {
    let kill_at = SimTime::from_millis(150);
    let run = |seed: u64| {
        let cfg = ClusterConfig::paper_cluster()
            .with_seed(seed)
            .with_mm_standbys(2)
            .with_fault_detection(HEARTBEAT_EVERY)
            .with_failure_policy(FailurePolicy::requeue())
            .with_faults(FaultSchedule::new().mm_crash(kill_at, 0));
        let mut c = Cluster::new(cfg);
        let mut jobs = Vec::new();
        for i in 0..4u64 {
            jobs.push(
                c.submit_at(
                    SimTime::from_millis(60 * i), // job 3 arrives after the kill
                    JobSpec::new(
                        AppSpec::Synthetic {
                            compute: SimSpan::from_millis(200),
                        },
                        8 * 4,
                    )
                    .named(format!("failover-{i}")),
                ),
            );
        }
        c.run_until(SimTime::from_secs(3));
        let states: Vec<_> = jobs.iter().map(|&j| c.job(j).state).collect();
        let completions: Vec<_> = jobs.iter().map(|&j| c.job(j).metrics.completed).collect();
        let w = c.world();
        (
            states,
            completions,
            w.repl.clone(),
            w.mm_epoch,
            w.mm_active_rank,
            w.mm_core.hb_round,
            w.stats.failures_detected.clone(),
        )
    };

    let (states, completions, repl, epoch, active_rank, hb_round, failures) = run(11);
    for (i, s) in states.iter().enumerate() {
        assert_eq!(*s, JobState::Completed, "job {i} lost across failover");
    }
    assert!(completions.iter().all(Option::is_some));
    // Exactly one promotion: the lowest surviving rank (1).
    assert_eq!(repl.promotions, 1, "repl: {repl:?}");
    assert_eq!(repl.failovers.len(), 1);
    let (rank, promoted_at) = repl.failovers[0];
    assert_eq!(rank, 1, "successor must be the lowest surviving rank");
    assert_eq!(epoch, 1);
    assert_eq!(active_rank, 1);
    // Detection ≤ 2 beat periods (beat period = heartbeat_every × collect
    // period = 4 ms) plus one period of watchdog phase slack.
    let beat = SimSpan::from_millis(u64::from(HEARTBEAT_EVERY));
    let latency = promoted_at.since(kill_at);
    assert!(
        latency <= beat * 2 + SimSpan::from_millis(1),
        "failover took {latency} (beat period {beat})"
    );
    // Heartbeat rounds stay monotone across the promotion: the adopted
    // round is past the one current at the kill, and kept advancing.
    let kill_round = i64::try_from(kill_at.as_nanos() / beat.as_nanos()).unwrap();
    assert!(
        hb_round > kill_round,
        "hb_round {hb_round} did not advance past the kill round {kill_round}"
    );
    // Quarantine safety: the regroup never condemned a live compute node.
    assert!(failures.is_empty(), "false positives: {failures:?}");
    // Determinism: the same seed replays the identical failover.
    let again = run(11);
    assert_eq!(
        again,
        (
            states,
            completions,
            repl,
            epoch,
            active_rank,
            hb_round,
            failures
        ),
        "same-seed failover run diverged"
    );
}

/// The acceptance bar with teeth: configuring standbys must cost *nothing*
/// observable while no MM fault occurs — trace, cluster stats and per-job
/// metrics are byte-identical to a standby-free run. The replication
/// plane's own counters live in `World::repl` precisely so they can differ
/// here without breaking this.
#[test]
fn standbys_without_faults_are_byte_identical() {
    let run = |standbys: u32| {
        let cfg = ClusterConfig::paper_cluster()
            .with_seed(7)
            .with_mm_standbys(standbys)
            .with_fault_detection(HEARTBEAT_EVERY)
            .with_failure_policy(FailurePolicy::requeue());
        let mut c = Cluster::new(cfg);
        c.enable_tracing();
        let mut jobs = Vec::new();
        for i in 0..3u64 {
            jobs.push(
                c.submit_at(
                    SimTime::from_millis(40 * i),
                    JobSpec::new(
                        AppSpec::Synthetic {
                            compute: SimSpan::from_millis(120),
                        },
                        8 * 4,
                    )
                    .named(format!("ident-{i}")),
                ),
            );
        }
        c.run_until(SimTime::from_secs(2));
        let metrics: Vec<_> = jobs
            .iter()
            .map(|&j| (c.job(j).state, c.job(j).metrics.clone()))
            .collect();
        (c.trace(), c.world().stats.clone(), metrics)
    };

    let bare = run(0);
    let replicated = run(2);
    assert_eq!(bare.1, replicated.1, "cluster stats diverged");
    assert_eq!(bare.2, replicated.2, "job outcomes diverged");
    assert_eq!(bare.0, replicated.0, "trace diverged");
    // And the replication plane really was active in the second run.
    let cfg = ClusterConfig::paper_cluster()
        .with_seed(7)
        .with_mm_standbys(2)
        .with_fault_detection(HEARTBEAT_EVERY);
    let mut c = Cluster::new(cfg);
    c.submit(JobSpec::new(
        AppSpec::Synthetic {
            compute: SimSpan::from_millis(50),
        },
        8,
    ));
    c.run_until(SimTime::from_millis(200));
    let repl = &c.world().repl;
    assert!(repl.beats > 0, "standbys never received a beat");
    assert!(repl.log_records > 0, "no decisions were shipped");
    assert_eq!(repl.promotions, 0);
}

/// Failover telemetry: a killed-and-replaced MM records its detection and
/// promotion latencies, bumps the promotion counter, and moves the epoch
/// gauge — the observability half of the failover contract.
#[test]
fn mm_failover_records_detection_and_promotion_metrics() {
    let cfg = ClusterConfig::paper_cluster()
        .with_seed(3)
        .with_mm_standbys(1)
        .with_fault_detection(HEARTBEAT_EVERY)
        .with_failure_policy(FailurePolicy::requeue())
        .with_telemetry(true)
        .with_faults(FaultSchedule::new().mm_crash(SimTime::from_millis(50), 0));
    let mut c = Cluster::new(cfg);
    c.submit(JobSpec::new(
        AppSpec::Synthetic {
            compute: SimSpan::from_millis(100),
        },
        8 * 4,
    ));
    c.run_until(SimTime::from_secs(1));
    let snap = c.metrics_snapshot();
    assert_eq!(snap.counter("mm.promotions"), Some(1));
    assert_eq!(snap.counter("mm.replica_failures"), Some(1));
    assert_eq!(snap.gauge("mm.epoch"), Some(1));
    let detect = snap
        .histogram("failover.detection_latency_us")
        .expect("detection latency recorded");
    assert_eq!(detect.count(), 1);
    let promote = snap
        .histogram("failover.promotion_latency_us")
        .expect("promotion latency recorded");
    assert_eq!(promote.count(), 1);
    // Promotion includes the CAW epoch fence on top of detection.
    assert!(promote.sum() >= detect.sum());
}
