//! Fault-detection and failure-injection integration tests (§4).

use storm::core::prelude::*;

fn fault_cluster(heartbeat_every: u32) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_cluster();
    cfg.fault_detection = true;
    cfg.heartbeat_every = heartbeat_every;
    cfg
}

#[test]
fn failed_node_is_detected_within_two_rounds() {
    let mut c = Cluster::new(fault_cluster(8)); // round every 8 ms
    c.fail_node_at(SimTime::from_millis(100), 42);
    c.run_until(SimTime::from_millis(200));
    let detected = &c.world().stats.failures_detected;
    assert_eq!(detected.len(), 1);
    let (node, at) = detected[0];
    assert_eq!(node, 42);
    let latency = at.since(SimTime::from_millis(100));
    assert!(
        latency <= SimSpan::from_millis(17),
        "detection within ~2 rounds: {latency}"
    );
}

#[test]
fn healthy_cluster_raises_no_alarms() {
    let mut c = Cluster::new(fault_cluster(4));
    c.run_until(SimTime::from_secs(1));
    assert!(c.world().stats.failures_detected.is_empty());
    // Heartbeats flowed the whole time.
    assert!(c.world().hb_round > 200, "rounds: {}", c.world().hb_round);
}

#[test]
fn multiple_failures_are_isolated_individually() {
    let mut c = Cluster::new(fault_cluster(8));
    for (i, node) in [3u32, 9, 31, 63].iter().enumerate() {
        c.fail_node_at(SimTime::from_millis(50 + 40 * i as u64), *node);
    }
    c.run_until(SimTime::from_millis(500));
    let mut detected: Vec<u32> = c
        .world()
        .stats
        .failures_detected
        .iter()
        .map(|&(n, _)| n)
        .collect();
    detected.sort_unstable();
    assert_eq!(detected, vec![3, 9, 31, 63]);
}

#[test]
fn jobs_on_failed_nodes_are_failed_over() {
    let mut c = Cluster::new(fault_cluster(8));
    // Two jobs: one on the failing node's half, one elsewhere.
    let doomed = c.submit(
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_secs(10),
            },
            32 * 4,
        )
        .named("doomed"),
    );
    c.run_until(SimTime::from_millis(300)); // let it start
    let nodes = c.job(doomed).alloc().nodes.clone();
    c.fail_node_at(SimTime::from_millis(350), nodes.start);
    c.run_until(SimTime::from_millis(700));
    assert_eq!(c.job(doomed).state, JobState::Failed);
}

#[test]
fn survivors_keep_running_after_a_failure() {
    let mut c = Cluster::new(fault_cluster(8));
    let survivor = c.submit(
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_secs(2),
            },
            16 * 4,
        )
        .named("survivor"),
    );
    c.run_until(SimTime::from_millis(200));
    // Fail a node outside the survivor's allocation.
    let alloc = c.job(survivor).alloc().nodes.clone();
    let outside = (0..64).find(|n| !alloc.contains(n)).unwrap();
    c.fail_node_at(SimTime::from_millis(250), outside);
    c.run_until(SimTime::from_secs(5));
    assert_eq!(c.job(survivor).state, JobState::Completed);
    assert_eq!(c.world().stats.failures_detected.len(), 1);
}

#[test]
fn xfer_network_errors_are_retried_atomically() {
    // Inject a 10% XFER-AND-SIGNAL error rate through the declarative fault
    // schedule; the transfer protocol must retry aborted fragments and
    // still deliver the exact binary.
    let cfg = ClusterConfig::paper_cluster()
        .with_seed(9)
        .with_faults(FaultSchedule::new().with_xfer_errors(0.10));
    let mut c = Cluster::new(cfg);
    let j = c.submit(JobSpec::new(AppSpec::do_nothing_mb(8), 64));
    c.run_until_idle();
    assert_eq!(c.job(j).state, JobState::Completed);
    assert!(
        c.world().stats.xfer_retries > 0,
        "errors were actually injected and retried"
    );
    assert_eq!(
        c.world().stats.fragments,
        u64::from(c.job(j).transfer.total_chunks),
        "every fragment eventually delivered exactly once"
    );
}

#[test]
fn transient_error_burst_only_bites_inside_its_window() {
    // A burst confined to [5 ms, 30 ms) with error probability 1.0 stalls
    // every broadcast inside the window; after it passes, the transfer
    // completes normally.
    let cfg =
        ClusterConfig::paper_cluster()
            .with_seed(11)
            .with_faults(FaultSchedule::new().with_burst(
                SimTime::from_millis(5),
                SimTime::from_millis(30),
                1.0,
            ));
    let mut c = Cluster::new(cfg);
    let j = c.submit(JobSpec::new(AppSpec::do_nothing_mb(8), 64));
    c.run_until_idle();
    assert_eq!(c.job(j).state, JobState::Completed);
    assert!(
        c.world().stats.xfer_retries > 0,
        "the burst aborted transfers"
    );
}

#[test]
fn failed_job_allocation_is_reusable_by_later_jobs() {
    // Regression (S2): under the default `Fail` policy, a failed job's
    // buddy allocation must be freed and the dead node quarantined, so a
    // later submit can re-use the *surviving* nodes of the victim's block.
    let mut c = Cluster::new(fault_cluster(8));
    let doomed = c.submit(
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_secs(10),
            },
            32 * 4,
        )
        .named("doomed"),
    );
    c.run_until(SimTime::from_millis(300));
    let alloc = c.job(doomed).alloc().nodes.clone();
    let dead = alloc.start;
    c.fail_node_at(SimTime::from_millis(350), dead);
    c.run_until(SimTime::from_millis(700));
    assert_eq!(c.job(doomed).state, JobState::Failed);
    assert!(
        c.world().nodes.is_quarantined(dead),
        "dead node quarantined"
    );
    // A half-width job must fit on the surviving half of the freed block.
    let next = c.submit(
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_millis(50),
            },
            16 * 4,
        )
        .named("reuser"),
    );
    c.run_until(SimTime::from_secs(3));
    assert_eq!(
        c.job(next).state,
        JobState::Completed,
        "freed nodes reusable"
    );
    let reused = c.job(next).alloc().nodes.clone();
    assert!(
        !reused.contains(&dead),
        "quarantined node never re-allocated"
    );
}

#[test]
fn requeue_policy_retries_victim_on_surviving_capacity() {
    // Crash one node of a running job under `Requeue`: the job is evicted,
    // requeued with a bumped attempt, placed on surviving capacity, and
    // completes.
    let mut cfg = fault_cluster(4);
    cfg = cfg.with_failure_policy(FailurePolicy::requeue());
    let mut c = Cluster::new(cfg);
    let job = c.submit(
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_millis(400),
            },
            16 * 4,
        )
        .named("phoenix"),
    );
    c.run_until(SimTime::from_millis(200));
    let dead = c.job(job).alloc().nodes.start;
    c.fail_node_at(SimTime::from_millis(220), dead);
    c.run_until(SimTime::from_secs(3));
    let rec = c.job(job);
    assert_eq!(rec.state, JobState::Completed, "requeued job completed");
    assert_eq!(rec.retries, 1, "exactly one retry");
    assert_eq!(c.world().stats.requeues, 1);
    assert!(
        !rec.alloc().nodes.contains(&dead),
        "retry avoided the dead node"
    );
}

#[test]
fn retry_budget_exhaustion_fails_the_job() {
    // Keep killing whichever node hosts the job; after `max_retries`
    // requeues the budget runs out and the job fails for good.
    let cfg = fault_cluster(4).with_failure_policy(FailurePolicy::Requeue {
        max_retries: 2,
        backoff: SimSpan::from_millis(5),
    });
    let mut c = Cluster::new(cfg);
    let job = c.submit(
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_secs(30),
            },
            16 * 4,
        )
        .named("cursed"),
    );
    // Walk the failure across enough distinct nodes to chase every retry:
    // the 16-node job always lands on a 16-aligned block, so killing one
    // node out of each block eventually catches every incarnation.
    for (i, node) in [0u32, 16, 32, 48].iter().enumerate() {
        c.fail_node_at(SimTime::from_millis(200 + 300 * i as u64), *node);
    }
    c.run_until(SimTime::from_secs(5));
    let rec = c.job(job);
    assert_eq!(rec.state, JobState::Failed, "budget exhausted -> Failed");
    assert_eq!(rec.retries, 2, "both retries were spent");
}

#[test]
fn stalled_node_rejoins_without_job_loss() {
    // A dæmon stall long enough to trip the detector must NOT kill the
    // node: when the stall ends the deferred heartbeats catch up and the
    // node is re-admitted.
    let mut cfg = fault_cluster(4);
    cfg = cfg.with_faults(FaultSchedule::new().stall(
        7,
        SimTime::from_millis(50),
        SimTime::from_millis(120),
    ));
    let mut c = Cluster::new(cfg);
    c.run_until(SimTime::from_millis(400));
    let w = c.world();
    assert_eq!(
        w.stats.failures_detected.len(),
        1,
        "the stall tripped the detector: {:?}",
        w.stats.failures_detected
    );
    assert_eq!(w.stats.failures_detected[0].0, 7);
    assert_eq!(w.stats.rejoins.len(), 1, "the node was re-admitted");
    assert_eq!(w.stats.rejoins[0].0, 7);
    assert!(!w.nodes.is_quarantined(7), "quarantine lifted after rejoin");
}

#[test]
fn crashed_node_rejoins_and_hosts_new_work() {
    // Crash node 9 at 40 ms, revive it at 540 ms; after re-admission a
    // full-width job (needs all 64 nodes) must be placeable — proof the
    // rejoined node is back in the allocator.
    let mut cfg = fault_cluster(4);
    cfg = cfg.with_faults(
        FaultSchedule::new()
            .crash(SimTime::from_millis(40), 9)
            .rejoin(SimTime::from_millis(540), 9),
    );
    let mut c = Cluster::new(cfg);
    c.run_until(SimTime::from_secs(1));
    assert_eq!(c.world().stats.failures_detected.len(), 1);
    assert_eq!(c.world().stats.rejoins.len(), 1, "node re-admitted");
    let full = c.submit(JobSpec::new(AppSpec::do_nothing_mb(4), 64 * 4).named("full-width"));
    c.run_until(SimTime::from_secs(2));
    assert_eq!(
        c.job(full).state,
        JobState::Completed,
        "all 64 nodes usable again"
    );
}
