//! Fault-detection and failure-injection integration tests (§4).

use storm::core::prelude::*;

fn fault_cluster(heartbeat_every: u32) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_cluster();
    cfg.fault_detection = true;
    cfg.heartbeat_every = heartbeat_every;
    cfg
}

#[test]
fn failed_node_is_detected_within_two_rounds() {
    let mut c = Cluster::new(fault_cluster(8)); // round every 8 ms
    c.fail_node_at(SimTime::from_millis(100), 42);
    c.run_until(SimTime::from_millis(200));
    let detected = &c.world().stats.failures_detected;
    assert_eq!(detected.len(), 1);
    let (node, at) = detected[0];
    assert_eq!(node, 42);
    let latency = at.since(SimTime::from_millis(100));
    assert!(
        latency <= SimSpan::from_millis(17),
        "detection within ~2 rounds: {latency}"
    );
}

#[test]
fn healthy_cluster_raises_no_alarms() {
    let mut c = Cluster::new(fault_cluster(4));
    c.run_until(SimTime::from_secs(1));
    assert!(c.world().stats.failures_detected.is_empty());
    // Heartbeats flowed the whole time.
    assert!(c.world().hb_round > 200, "rounds: {}", c.world().hb_round);
}

#[test]
fn multiple_failures_are_isolated_individually() {
    let mut c = Cluster::new(fault_cluster(8));
    for (i, node) in [3u32, 9, 31, 63].iter().enumerate() {
        c.fail_node_at(SimTime::from_millis(50 + 40 * i as u64), *node);
    }
    c.run_until(SimTime::from_millis(500));
    let mut detected: Vec<u32> = c
        .world()
        .stats
        .failures_detected
        .iter()
        .map(|&(n, _)| n)
        .collect();
    detected.sort_unstable();
    assert_eq!(detected, vec![3, 9, 31, 63]);
}

#[test]
fn jobs_on_failed_nodes_are_failed_over() {
    let mut c = Cluster::new(fault_cluster(8));
    // Two jobs: one on the failing node's half, one elsewhere.
    let doomed = c.submit(
        JobSpec::new(AppSpec::Synthetic { compute: SimSpan::from_secs(10) }, 32 * 4)
            .named("doomed"),
    );
    c.run_until(SimTime::from_millis(300)); // let it start
    let nodes = c.job(doomed).alloc().nodes.clone();
    c.fail_node_at(SimTime::from_millis(350), nodes.start);
    c.run_until(SimTime::from_millis(700));
    assert_eq!(c.job(doomed).state, JobState::Failed);
}

#[test]
fn survivors_keep_running_after_a_failure() {
    let mut c = Cluster::new(fault_cluster(8));
    let survivor = c.submit(
        JobSpec::new(AppSpec::Synthetic { compute: SimSpan::from_secs(2) }, 16 * 4)
            .named("survivor"),
    );
    c.run_until(SimTime::from_millis(200));
    // Fail a node outside the survivor's allocation.
    let alloc = c.job(survivor).alloc().nodes.clone();
    let outside = (0..64).find(|n| !alloc.contains(n)).unwrap();
    c.fail_node_at(SimTime::from_millis(250), outside);
    c.run_until(SimTime::from_secs(5));
    assert_eq!(c.job(survivor).state, JobState::Completed);
    assert_eq!(c.world().stats.failures_detected.len(), 1);
}

#[test]
fn xfer_network_errors_are_retried_atomically() {
    // Inject a 10% XFER-AND-SIGNAL error rate; the transfer protocol must
    // retry aborted fragments and still deliver the exact binary.
    let mut c = Cluster::new(ClusterConfig::paper_cluster().with_seed(9));
    // (fault plan lives in the mechanisms; reach in through the cluster)
    // Note: set before any transfer begins.
    let job_spec = JobSpec::new(AppSpec::do_nothing_mb(8), 64);
    // Build a fresh cluster with the fault plan threaded through a custom
    // config instead: simplest is to mutate after construction via a
    // submit-time hook — for the test we rebuild the world directly.
    let j = {
        // Safety valve: cluster exposes the world read-only; use the
        // documented test hook below.
        c.with_world_mut(|w| w.mech.fault.xfer_error_prob = 0.10);
        c.submit(job_spec)
    };
    c.run_until_idle();
    assert_eq!(c.job(j).state, JobState::Completed);
    assert!(
        c.world().stats.xfer_retries > 0,
        "errors were actually injected and retried"
    );
    assert_eq!(
        c.world().stats.fragments,
        u64::from(c.job(j).transfer.total_chunks),
        "every fragment eventually delivered exactly once"
    );
}
