//! Policy integration tests: batch FCFS, EASY backfilling and gang
//! scheduling driving the same cluster end-to-end.

use storm::core::prelude::*;

fn synth(secs: u64, pes: u32, est: u64) -> JobSpec {
    JobSpec::new(
        AppSpec::Synthetic {
            compute: SimSpan::from_secs(secs),
        },
        pes,
    )
    .with_estimate(SimSpan::from_secs(est))
}

fn cluster(policy: SchedulerKind, mpl: usize) -> Cluster {
    let mut cfg = ClusterConfig::paper_cluster()
        .with_scheduler(policy)
        .with_timeslice(SimSpan::from_millis(50));
    cfg.mpl_max = mpl;
    Cluster::new(cfg)
}

#[test]
fn batch_runs_strictly_in_order() {
    let mut c = cluster(SchedulerKind::Batch, 1);
    // Three full-machine jobs: must run back-to-back.
    let jobs: Vec<JobId> = (0..3).map(|_| c.submit(synth(2, 256, 3))).collect();
    c.run_until_idle();
    let starts: Vec<f64> = jobs
        .iter()
        .map(|&j| c.job(j).metrics.started.unwrap().as_secs_f64())
        .collect();
    assert!(starts[0] < starts[1] && starts[1] < starts[2]);
    assert!(
        starts[1] >= 2.0,
        "second job waits for the first: {starts:?}"
    );
    assert!(starts[2] >= 4.0, "third job waits for both: {starts:?}");
}

#[test]
fn backfill_jumps_short_jobs_without_delaying_the_head() {
    // 64-node machine. long(32 nodes, 30 s) runs; wide(64 nodes) is queued
    // behind it; short(8 nodes, 2 s) backfills into the idle half.
    let mut c = cluster(SchedulerKind::Backfill, 1);
    let long = c.submit(synth(30, 32 * 4, 31));
    let wide = c.submit(synth(2, 64 * 4, 3));
    let short = c.submit(synth(2, 8 * 4, 3));
    c.run_until_idle();
    let start = |j: JobId| c.job(j).metrics.started.unwrap().as_secs_f64();
    assert!(
        start(short) < 2.0,
        "short backfilled immediately: {}",
        start(short)
    );
    assert!(
        start(wide) >= 30.0,
        "wide waited for the long job: {}",
        start(wide)
    );
    // EASY property: the wide job started essentially when the long job
    // ended — the backfilled job did not delay it.
    let long_done = c.job(long).metrics.completed.unwrap().as_secs_f64();
    assert!(
        start(wide) - long_done < 0.5,
        "reservation honoured: wide at {} vs long done {long_done}",
        start(wide)
    );
}

#[test]
fn backfill_blocks_jobs_that_would_delay_the_head() {
    let mut c = cluster(SchedulerKind::Backfill, 1);
    let _long = c.submit(synth(10, 32 * 4, 11));
    let wide = c.submit(synth(2, 64 * 4, 3));
    // This one fits in the idle half but its estimate (30 s) crosses the
    // wide job's reservation (~10 s): it must NOT start before the wide job.
    let greedy = c.submit(synth(30, 8 * 4, 31));
    c.run_until_idle();
    let start = |j: JobId| c.job(j).metrics.started.unwrap().as_secs_f64();
    assert!(
        start(greedy) > start(wide),
        "greedy ({}) must not overtake the reservation holder ({})",
        start(greedy),
        start(wide)
    );
}

#[test]
fn gang_timeshares_what_batch_serialises() {
    // Two full-machine jobs.
    let run = |policy, mpl| {
        let mut c = cluster(policy, mpl);
        let a = c.submit(synth(5, 256, 6));
        let b = c.submit(synth(5, 256, 6));
        c.run_until_idle();
        (
            c.job(a).metrics.started.unwrap().as_secs_f64(),
            c.job(b).metrics.started.unwrap().as_secs_f64(),
            c.job(b).metrics.completed.unwrap().as_secs_f64(),
        )
    };
    let (_, batch_b_start, batch_done) = run(SchedulerKind::Batch, 1);
    let (_, gang_b_start, gang_done) = run(SchedulerKind::Gang, 2);
    assert!(batch_b_start >= 5.0, "batch: B waits for A");
    assert!(gang_b_start < 1.0, "gang: B starts immediately");
    // Total makespan is ~the same (same total work).
    assert!((batch_done - gang_done).abs() / batch_done < 0.1);
}

#[test]
fn queue_drains_in_bounded_time() {
    // A stream of 12 mixed jobs must all complete under each policy.
    for policy in [
        SchedulerKind::Gang,
        SchedulerKind::Batch,
        SchedulerKind::Backfill,
    ] {
        let mut c = cluster(policy, 2);
        let jobs: Vec<JobId> = (0..12)
            .map(|i| {
                let pes = [16u32, 64, 256][i % 3];
                c.submit(synth(1 + (i as u64 % 3), pes, 5))
            })
            .collect();
        c.run_until_idle();
        for &j in &jobs {
            assert_eq!(c.job(j).state, JobState::Completed, "{policy:?}: {j}");
        }
    }
}

#[test]
fn gang_scheduler_reuses_freed_slots() {
    let mut c = cluster(SchedulerKind::Gang, 2);
    // Fill both slots, then submit a third job; it must start once a slot
    // frees.
    let a = c.submit(synth(2, 256, 3));
    let b = c.submit(synth(2, 256, 3));
    let late = c.submit(synth(1, 256, 2));
    c.run_until_idle();
    let done_first = c
        .job(a)
        .metrics
        .completed
        .unwrap()
        .min(c.job(b).metrics.completed.unwrap());
    let late_start = c.job(late).metrics.started.unwrap();
    assert!(late_start >= done_first, "third job waited for a free slot");
    assert_eq!(c.job(late).state, JobState::Completed);
}
