//! # storm — STORM: Lightning-Fast Resource Management (SC 2002), reproduced in Rust
//!
//! Umbrella crate re-exporting the whole workspace:
//!
//! * [`core`] — the STORM resource manager itself (MM/NM/PL dæmons, buddy
//!   allocation, gang matrix, launch protocol, schedulers, fault
//!   detection). Start at [`core::Cluster`].
//! * [`mech`] — the three STORM mechanisms (XFER-AND-SIGNAL, TEST-EVENT,
//!   COMPARE-AND-WRITE) over hardware or emulated collectives.
//! * [`net`] — the QsNET (Elan3) timing model and the Table 5 comparison
//!   networks; [`fs`] — RAM-disk/ext2/NFS models; [`sim`] — the
//!   deterministic discrete-event engine underneath everything.
//! * [`telemetry`] — deterministic metrics registry, per-job lifecycle
//!   spans, and Chrome-trace timeline export for any instrumented run.
//! * [`query`] — relational views over a running cluster (jobs, nodes,
//!   slots, allocations, MM replicas) with filters/sorts/joins/aggregates,
//!   plus continuous queries firing alerts at timeslice boundaries; see
//!   also [`core::checkpoint`] for checkpoint/restore of a running
//!   cluster.
//! * [`apps`] — workload models (SWEEP3D, synthetic, hogs, job streams);
//!   [`baselines`] — rsh/RMS/GLUnix/Cplant/BProc and the Table 8 scheduler
//!   models; [`model`] — the paper's closed-form scalability models.
//!
//! See the README for the architecture, `DESIGN.md` for the paper-to-module
//! map, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ```
//! use storm::core::prelude::*;
//!
//! // The paper's headline experiment: 12 MB on 256 PEs in ~110 ms.
//! let mut cluster = Cluster::new(ClusterConfig::paper_cluster());
//! let job = cluster.submit(JobSpec::new(AppSpec::do_nothing_mb(12), 256));
//! cluster.run_until_idle();
//! let total = cluster.job(job).metrics.total_launch_span().unwrap();
//! assert!(total.as_millis_f64() < 130.0);
//! ```

pub use storm_apps as apps;
pub use storm_baselines as baselines;
pub use storm_core as core;
pub use storm_fs as fs;
pub use storm_mech as mech;
pub use storm_model as model;
pub use storm_net as net;
pub use storm_query as query;
pub use storm_sim as sim;
pub use storm_telemetry as telemetry;
