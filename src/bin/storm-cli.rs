//! `storm-cli` — drive the STORM reproduction from the command line.
//!
//! ```text
//! storm-cli launch  [--nodes 64] [--pes 256] [--mb 12] [--load none|cpu|net]
//!                   [--chunk-kb 512] [--slots 4] [--fs ram|disk|nfs] [--seed N]
//! storm-cli gang    [--nodes 32] [--quantum-us 50000] [--mpl 2]
//!                   [--app sweep3d|synthetic] [--seed N]
//! storm-cli trace   [--jobs 60] [--policy batch|backfill|gang] [--seed N]
//! storm-cli faults  [--fail 17@500] [--fail 55@900] ...
//! ```
//!
//! Every command prints the same quantities the paper's corresponding
//! experiment reports. Argument parsing is deliberately dependency-free.

use std::process::ExitCode;
use storm::apps::{stream_metrics, CompletedJob, StreamConfig};
use storm::core::prelude::*;
use storm::sim::DeterministicRng;

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(rest: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut it = rest.iter();
        while let Some(a) = it.next() {
            let name = a
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got '{a}'"))?;
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name.to_string(), value.clone()));
        }
        Ok(Args { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse '{v}'")),
            None => Ok(default),
        }
    }

    fn all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.flags
            .iter()
            .filter(move |(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn usage() -> &'static str {
    "storm-cli — STORM (SC2002) reproduction driver

USAGE:
  storm-cli launch  [--nodes 64] [--pes 256] [--mb 12] [--load none|cpu|net]
                    [--chunk-kb 512] [--slots 4] [--fs ram|disk|nfs] [--seed N]
  storm-cli gang    [--nodes 32] [--quantum-us 50000] [--mpl 2]
                    [--app sweep3d|synthetic] [--seed N]
  storm-cli trace   [--jobs 60] [--policy batch|backfill|gang] [--seed N]
  storm-cli faults  [--fail NODE@MS]...

Full table/figure reproduction: cargo bench -p storm-bench
"
}

fn cmd_launch(args: &Args) -> Result<(), String> {
    let nodes: u32 = args.num("nodes", 64)?;
    let pes: u32 = args.num("pes", nodes * 4)?;
    let mb: u64 = args.num("mb", 12)?;
    let chunk_kb: u64 = args.num("chunk-kb", 512)?;
    let slots: u32 = args.num("slots", 4)?;
    let seed: u64 = args.num("seed", 0x57)?;
    let load = match args.get("load").unwrap_or("none") {
        "none" => BackgroundLoad::NONE,
        "cpu" => BackgroundLoad::cpu_loaded(),
        "net" => BackgroundLoad::network_loaded(),
        other => return Err(format!("--load: unknown scenario '{other}'")),
    };
    let fs = match args.get("fs").unwrap_or("ram") {
        "ram" => FsKind::RamDisk,
        "disk" => FsKind::LocalExt2,
        "nfs" => FsKind::Nfs,
        other => return Err(format!("--fs: unknown filesystem '{other}'")),
    };
    let mut cfg = ClusterConfig::paper_cluster()
        .with_nodes(nodes)
        .with_transfer_protocol(chunk_kb * 1024, slots)
        .with_load(load)
        .with_seed(seed);
    cfg.fs = fs;
    let mut cluster = Cluster::new(cfg);
    let job = cluster.submit(JobSpec::new(AppSpec::do_nothing_mb(mb), pes));
    cluster.run_until_idle();
    let m = &cluster.job(job).metrics;
    println!("launch of a {mb} MB binary on {pes} PEs / {nodes} nodes:");
    println!("  send    {}", m.send_span().expect("send"));
    println!("  execute {}", m.execute_span().expect("execute"));
    println!("  total   {}", m.total_launch_span().expect("total"));
    println!(
        "  protocol bandwidth {:.1} MB/s over {} fragments",
        mb as f64 * 1000.0 / m.send_span().unwrap().as_millis_f64(),
        cluster.world().stats.fragments
    );
    Ok(())
}

fn cmd_gang(args: &Args) -> Result<(), String> {
    let nodes: u32 = args.num("nodes", 32)?;
    let quantum_us: u64 = args.num("quantum-us", 50_000)?;
    let mpl: u32 = args.num("mpl", 2)?;
    let seed: u64 = args.num("seed", 0x57)?;
    let app = match args.get("app").unwrap_or("sweep3d") {
        "sweep3d" => AppSpec::sweep3d_default(),
        "synthetic" => AppSpec::synthetic_default(),
        other => return Err(format!("--app: unknown application '{other}'")),
    };
    let cfg = ClusterConfig::gang_cluster()
        .with_nodes(nodes)
        .with_timeslice(SimSpan::from_micros(quantum_us))
        .with_seed(seed);
    if cfg.quantum_infeasible() {
        return Err(format!(
            "quantum {} is below the NM control-message floor (~{}): the \
             scheduler cannot keep up (Section 3.2.1)",
            SimSpan::from_micros(quantum_us),
            cfg.daemon.nm_strobe_service
        ));
    }
    let mut cluster = Cluster::new(cfg);
    let jobs: Vec<JobId> = (0..mpl)
        .map(|_| cluster.submit(JobSpec::new(app.clone(), nodes * 2).with_ranks_per_node(2)))
        .collect();
    cluster.run_until_idle();
    let last = jobs
        .iter()
        .map(|&j| cluster.job(j).metrics.completed.expect("completed"))
        .max()
        .expect("jobs");
    println!(
        "{} x{} on {} nodes / {} PEs, quantum {}:",
        app.name(),
        mpl,
        nodes,
        nodes * 2,
        SimSpan::from_micros(quantum_us)
    );
    println!(
        "  total runtime {}  normalised (/MPL) {:.2} s  strobes {}",
        last,
        last.as_secs_f64() / f64::from(mpl),
        cluster.world().stats.strobes
    );
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    let jobs: usize = args.num("jobs", 60)?;
    let seed: u64 = args.num("seed", 1)?;
    let (policy, mpl) = match args.get("policy").unwrap_or("gang") {
        "batch" => (SchedulerKind::Batch, 1),
        "backfill" => (SchedulerKind::Backfill, 1),
        "gang" => (SchedulerKind::Gang, 2),
        other => return Err(format!("--policy: unknown policy '{other}'")),
    };
    let mut cfg = ClusterConfig::paper_cluster()
        .with_scheduler(policy)
        .with_timeslice(SimSpan::from_millis(50))
        .with_seed(seed);
    cfg.mpl_max = mpl;
    let mut cluster = Cluster::new(cfg);
    let stream = StreamConfig {
        jobs,
        ..StreamConfig::default()
    }
    .generate(&mut DeterministicRng::new(seed));
    let ids: Vec<JobId> = stream
        .iter()
        .map(|j| {
            cluster.submit_at(
                j.arrival,
                JobSpec::new(j.app.clone(), j.ranks).with_estimate(j.estimate),
            )
        })
        .collect();
    cluster.run_until_idle();
    let completed: Vec<CompletedJob> = ids
        .iter()
        .zip(&stream)
        .map(|(&id, j)| {
            let m = &cluster.job(id).metrics;
            CompletedJob {
                arrival: j.arrival,
                started: m.started.expect("started"),
                completed: m.completed.expect("completed"),
                ranks: j.ranks,
                work: j.runtime,
            }
        })
        .collect();
    let m = stream_metrics(&completed, cluster.world().cfg.total_pes());
    println!("{jobs}-job trace under {policy:?} (MPL {mpl}):");
    println!("  makespan          {}", m.makespan);
    println!("  mean wait         {}", m.mean_wait);
    println!("  bounded slowdown  {:.2}", m.mean_bounded_slowdown);
    println!("  utilisation       {:.1}%", m.utilization * 100.0);
    Ok(())
}

fn cmd_faults(args: &Args) -> Result<(), String> {
    let mut cfg = ClusterConfig::paper_cluster();
    cfg.fault_detection = true;
    cfg.heartbeat_every = 8;
    let mut cluster = Cluster::new(cfg);
    let mut latest = SimTime::ZERO;
    let mut injected = Vec::new();
    for spec in args.all("fail") {
        let (node, ms) = spec
            .split_once('@')
            .ok_or_else(|| format!("--fail expects NODE@MS, got '{spec}'"))?;
        let node: u32 = node.parse().map_err(|_| format!("bad node '{node}'"))?;
        let ms: u64 = ms.parse().map_err(|_| format!("bad time '{ms}'"))?;
        let nodes = cluster.world().cfg.nodes;
        if node >= nodes {
            return Err(format!(
                "node {node} out of range (cluster has {nodes} nodes)"
            ));
        }
        let at = SimTime::from_millis(ms);
        cluster.fail_node_at(at, node);
        injected.push((node, at));
        latest = latest.max(at);
    }
    if injected.is_empty() {
        return Err("give at least one --fail NODE@MS".into());
    }
    cluster.run_until(latest + SimSpan::from_millis(100));
    println!("heartbeat fault detection (round every 8 ms):");
    for (node, at) in &injected {
        match cluster
            .world()
            .stats
            .failures_detected
            .iter()
            .find(|(n, _)| n == node)
        {
            Some((_, det)) => println!(
                "  node {node:>3}: failed {at}, detected {det} (latency {})",
                det.since(*at)
            ),
            None => println!("  node {node:>3}: NOT detected"),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let result = Args::parse(rest).and_then(|args| match cmd.as_str() {
        "launch" => cmd_launch(&args),
        "gang" => cmd_gang(&args),
        "trace" => cmd_trace(&args),
        "faults" => cmd_faults(&args),
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{}", usage())),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
