//! Offline vendored subset of the `proptest` crate API.
//!
//! This workspace builds with no access to crates.io, so the slice of
//! proptest it uses is provided here as a path dependency: the `proptest!`
//! macro, `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`,
//! `ProptestConfig::with_cases`, and strategies over integer/float ranges,
//! tuples, `prop::collection::vec`, `prop::sample::select`, `any::<T>()`
//! and `.prop_map`.
//!
//! Semantics differ from upstream in one deliberate way: there is **no
//! shrinking**. A failing case panics with the generated inputs' debug
//! representation (via the `prop_assert!` message), which is enough to
//! reproduce deterministically — case generation is a pure function of the
//! test's name and case index, so re-running the test replays the same
//! inputs.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// A generator for `case` of the test named `name` — a pure function of
    /// both, so every run of the suite replays identical inputs.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        TestRng { s }
    }

    /// Next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 below `n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    // References to strategies are strategies (lets `&strat` be reused).
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

use strategy::Strategy;

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for `any::<bool>()`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Strategy for `any::<uN/iN>()` — the full-domain range.
#[derive(Debug, Clone, Copy)]
pub struct AnyInt<T>(std::marker::PhantomData<T>);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;
            fn arbitrary() -> AnyInt<$t> {
                AnyInt(std::marker::PhantomData)
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T` (`any::<bool>()` etc).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::TestRng;
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with a length drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `vec(element, 1..200)` — a vector of `element`-generated values
        /// whose length is drawn uniformly from the (half-open) range.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::TestRng;

        /// Strategy choosing uniformly from a fixed list.
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        /// `select(vec![...])` — choose one of the options uniformly.
        pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                let idx = rng.below(self.options.len() as u64) as usize;
                self.options[idx].clone()
            }
        }
    }
}

pub mod test_runner {
    //! Test-run configuration.

    /// How many cases each `proptest!` test runs (subset of the upstream
    /// config).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary};
}

/// Assert inside a `proptest!` body (panics with the failing inputs in the
/// backtrace; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::TestRng::for_case(test_name, case);
                $(let $arg = $crate::strategy::Strategy::generate(
                    &($strat),
                    &mut __proptest_rng,
                );)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_and_tuples(
            x in 0u32..10,
            (lo, hi) in (0u8..=1, 5i64..6),
            f in 0.25f64..0.75,
        ) {
            prop_assert!(x < 10);
            prop_assert!(lo <= 1);
            prop_assert_eq!(hi, 5);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_and_select_and_map(
            v in prop::collection::vec((0u8..=1, 0u32..=8), 1..20),
            pick in prop::sample::select(vec![2u32, 8, 32]),
            mapped in (1u64..5).prop_map(|n| n * 10),
            flag in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!([2, 8, 32].contains(&pick));
            prop_assert!((10..50).contains(&mapped));
            prop_assert!(u8::from(flag) <= 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn configured_case_count(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }
}
