//! Offline vendored subset of the `criterion` benchmark API.
//!
//! This workspace builds with no access to crates.io; the criterion surface
//! its one harness-less bench target uses is provided here. Measurement is a
//! simple wall-clock sampler (median / mean / p95 over `sample_size`
//! samples) — adequate for spotting order-of-magnitude regressions, with no
//! statistical machinery, plots or HTML reports.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup across iterations. All variants
/// behave identically here (one setup per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing loop handed to `bench_function` closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }

    /// Run `routine` over fresh inputs from `setup`, timing only `routine`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Builder: number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample_size must be ≥ 1");
        self.sample_size = n;
        self
    }

    /// Measure one benchmark and print a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let mut sorted = b.samples.clone();
        sorted.sort_unstable();
        let fmt = |d: Duration| {
            let ns = d.as_nanos();
            if ns >= 1_000_000_000 {
                format!("{:.3} s", d.as_secs_f64())
            } else if ns >= 1_000_000 {
                format!("{:.3} ms", ns as f64 / 1e6)
            } else if ns >= 1_000 {
                format!("{:.3} µs", ns as f64 / 1e3)
            } else {
                format!("{ns} ns")
            }
        };
        if sorted.is_empty() {
            println!("{id:<40} (no samples)");
        } else {
            let median = sorted[sorted.len() / 2];
            let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
            let p95 = sorted[(sorted.len() * 95 / 100).min(sorted.len() - 1)];
            println!(
                "{id:<40} median {:>12}   mean {:>12}   p95 {:>12}   ({} samples)",
                fmt(median),
                fmt(mean),
                fmt(p95),
                sorted.len()
            );
        }
        self
    }

    /// Parse CLI args (subset: everything is accepted and ignored) and
    /// finish. Exists so `criterion_main!`'s expansion works unchanged.
    pub fn final_summary(&self) {}

    /// Upstream-compatible configuration hook (no-op).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declare a benchmark group, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the bench entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = quick_bench
    }

    #[test]
    fn group_runs() {
        benches();
    }
}
