//! Offline vendored subset of the `rand` crate API.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! small slice of `rand` it actually uses — `rngs::SmallRng`, the `Rng`
//! convenience methods `random`/`random_range`, and
//! `SeedableRng::seed_from_u64` — is provided here as a path dependency.
//! The generator is xoshiro256++ seeded through SplitMix64 (the same family
//! the real `SmallRng` uses on 64-bit targets). Streams are deterministic
//! and stable across runs and platforms, which is all the simulator relies
//! on; they are *not* bit-compatible with upstream `rand`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (`Rng::random`).
pub trait StandardSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types usable as `Rng::random_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from the half-open range `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from the closed range `[low, high]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "random_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                let u = <$t as StandardSample>::sample(rng);
                low + u * (high - low)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "random_range: empty range");
                let u = <$t as StandardSample>::sample(rng);
                low + u * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// A range usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T` (uniform bits; floats in
    /// `[0, 1)`).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn random_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generator namespace, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // Avoid the all-zero state (unreachable via SplitMix64, but be
            // explicit).
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// The raw xoshiro256++ state words, for checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from previously captured state words.
        ///
        /// The all-zero state is a fixed point of xoshiro256++ and can
        /// never be produced by [`SeedableRng::seed_from_u64`]; it is
        /// remapped the same way seeding would remap it.
        pub fn from_state(s: [u64; 4]) -> Self {
            let mut s = s;
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..2000 {
            let v: u64 = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: u8 = r.random_range(0..=1);
            seen_low |= w == 0;
            seen_high |= w == 1;
            let f: f64 = r.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let s: i64 = r.random_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
        assert!(seen_low && seen_high, "inclusive range hits both ends");
    }
}
